package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"depsense/internal/obs"
	"depsense/internal/runctx"
)

// scrape GETs /metrics and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample line's value from an exposition body.
func metricValue(t *testing.T, body, line string) string {
	t.Helper()
	v := optionalMetricValue(body, line)
	if v == "" {
		t.Fatalf("metric line %q not found in:\n%s", line, body)
	}
	return v
}

// optionalMetricValue is metricValue for series that may be absent ("").
func optionalMetricValue(body, line string) string {
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, line+" ") {
			return strings.TrimPrefix(l, line+" ")
		}
	}
	return ""
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad metric value %q: %v", s, err)
	}
	return v
}

// TestMetricsEndpoint exercises /v1/factfind and checks that /metrics
// reports request counts by endpoint/status and estimator iteration/stop
// telemetry matching the response the API returned.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()

	req := sampleRequest()
	req.Algorithm = "EM-Ext"
	resp, body := postJSON(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factfind status %d: %s", resp.StatusCode, body)
	}
	var out Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}

	m := scrape(t, ts.URL)
	if got := metricValue(t, m, `depsense_http_requests_total{code="200",endpoint="/v1/factfind"}`); got != "1" {
		t.Fatalf("factfind request count = %s, want 1", got)
	}
	// The algorithm the API reported must have finished exactly one run
	// with the response's stop reason.
	if got := metricValue(t, m,
		`depsense_estimator_runs_total{algorithm="EM-Ext",stopped="`+out.Stopped+`"}`); got != "1" {
		t.Fatalf("runs{EM-Ext,%s} = %s, want 1", out.Stopped, got)
	}
	// Exported iteration totals match the response's Iterations. EM-Ext's
	// auto mode stages through EM-Social on sparse data (DepModePlugin), so
	// the units surface under both variant names; the sum is the run.
	iters := 0.0
	for _, alg := range []string{"EM-Ext", "EM-Social"} {
		if v := optionalMetricValue(m, `depsense_estimator_iterations_total{algorithm="`+alg+`"}`); v != "" {
			iters += parseFloat(t, v)
		}
	}
	if iters != float64(out.Iterations) {
		t.Fatalf("exported iterations = %v, response reported %d", iters, out.Iterations)
	}
	// Pipeline stage timing: all five stages observed once.
	for _, stage := range []string{"ingest", "cluster", "build", "fit", "rank"} {
		if got := metricValue(t, m,
			`depsense_pipeline_stage_duration_seconds_count{stage="`+stage+`"}`); got != "1" {
			t.Fatalf("stage %q observation count = %s, want 1", stage, got)
		}
	}
	// In-flight settles back to zero once the scrape is the only request.
	if got := metricValue(t, m, "depsense_http_in_flight_requests"); got != "1" {
		// The scrape itself is in flight while rendering.
		t.Fatalf("in-flight during scrape = %s, want 1", got)
	}
}

// TestMiddlewareAccounting checks status/latency accounting across
// endpoints and statuses, with an injected clock pinning the latency sums.
func TestMiddlewareAccounting(t *testing.T) {
	now := time.Unix(0, 0)
	srv := New(Options{
		Seed: 1,
		Clock: func() time.Time {
			now = now.Add(50 * time.Millisecond)
			return now
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One 405 on the same endpoint.
	resp, err := http.Post(ts.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	reg := srv.Metrics()
	if got := reg.Counter(MetricRequests, "", obs.L("endpoint", "/healthz"), obs.L("code", "200")).Value(); got != 3 {
		t.Fatalf("healthz 200 count = %v, want 3", got)
	}
	if got := reg.Counter(MetricRequests, "", obs.L("endpoint", "/healthz"), obs.L("code", "405")).Value(); got != 1 {
		t.Fatalf("healthz 405 count = %v, want 1", got)
	}
	h := reg.Histogram(MetricRequestSeconds, "", nil, obs.L("endpoint", "/healthz"))
	// Four requests, each spanning exactly one 50ms clock step.
	if h.Count() != 4 || h.Sum() != 0.2 {
		t.Fatalf("healthz latency histogram count=%d sum=%v, want 4/0.2", h.Count(), h.Sum())
	}
	if got := reg.Gauge(MetricInFlight, "").Value(); got != 0 {
		t.Fatalf("in-flight after quiesce = %v, want 0", got)
	}
}

// TestMetricsDeterminism: the same request served at Workers: 1 and
// Workers: 4 must produce identical counter and gauge values — the
// parallel-determinism contract extended to telemetry. Wall-clock latency
// histograms are excluded (duration, not determinism).
func TestMetricsDeterminism(t *testing.T) {
	run := func(workers int) string {
		srv := New(Options{Seed: 1, Workers: workers})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		req := sampleRequest()
		req.Algorithm = "EM-Ext"
		resp, body := postJSON(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d status %d: %s", workers, resp.StatusCode, body)
		}
		return scrape(t, ts.URL)
	}
	filter := func(m string) string {
		var keep []string
		for _, l := range strings.Split(m, "\n") {
			if strings.Contains(l, "_seconds") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	m1, m4 := filter(run(1)), filter(run(4))
	if m1 != m4 {
		t.Fatalf("metrics differ between Workers 1 and 4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", m1, m4)
	}
}

// TestDisableMetrics: the endpoint disappears, telemetry keeps recording.
func TestDisableMetrics(t *testing.T) {
	srv := New(Options{Seed: 1, DisableMetrics: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics status %d, want 404 when disabled", resp.StatusCode)
	}
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if got := srv.Metrics().Counter(MetricRequests, "",
		obs.L("endpoint", "/healthz"), obs.L("code", "200")).Value(); got != 1 {
		t.Fatalf("healthz count with metrics disabled = %v, want 1", got)
	}
}

// TestComputeDeadlineStopReasonExported: a 503 deadline response leaves a
// matching stop-reason counter behind.
func TestComputeDeadlineStopReasonExported(t *testing.T) {
	srv := New(Options{Seed: 1, ComputeTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	req := sampleRequest()
	req.Algorithm = "EM-Ext"
	resp, _ := postJSON(t, ts.URL, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	reg := srv.Metrics()
	if got := reg.Counter(MetricComputeExhausted, "",
		obs.L("reason", runctx.StopDeadline)).Value(); got != 1 {
		t.Fatalf("compute-exhausted{deadline} = %v, want 1", got)
	}
	if got := reg.Counter(MetricRequests, "",
		obs.L("endpoint", "/v1/factfind"), obs.L("code", "503")).Value(); got != 1 {
		t.Fatalf("503 request counter = %v, want 1", got)
	}
}
