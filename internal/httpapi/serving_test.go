package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"depsense/internal/obs"
)

// waitFor polls cond every millisecond until it holds, failing the test
// after a generous bound. Poll-based (no wall-clock deadline) so the test
// needs no bare time.Now.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTrailingGarbageRejected: a conforming /v1/factfind payload is exactly
// one JSON object — data after it (a second object, stray tokens) is a 400,
// not silently ignored. Trailing whitespace stays legal.
func TestTrailingGarbageRejected(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	raw, err := json.Marshal(sampleRequest())
	if err != nil {
		t.Fatal(err)
	}

	for _, garbage := range []string{`{"junk":1}`, `[]`, `42`, `x`} {
		resp, err := http.Post(ts.URL+"/v1/factfind", "application/json",
			strings.NewReader(string(raw)+garbage))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trailing %q: status %d, want 400 (%s)", garbage, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "after the JSON payload") {
			t.Fatalf("trailing %q: error does not name the problem: %s", garbage, body)
		}
	}

	// Trailing whitespace is not garbage.
	resp, err := http.Post(ts.URL+"/v1/factfind", "application/json",
		strings.NewReader(string(raw)+"\n  \t\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trailing whitespace: status %d, want 200", resp.StatusCode)
	}
}

// TestMethodNotAllowed: every endpoint answers a wrong-method request with
// 405, the RFC 9110-required Allow header, and the standard JSON error body.
func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	cases := []struct {
		path    string
		allowed string
		wrong   string
	}{
		{"/healthz", http.MethodGet, http.MethodPost},
		{"/healthz", http.MethodGet, http.MethodDelete},
		{"/v1/algorithms", http.MethodGet, http.MethodPost},
		{"/v1/factfind", http.MethodPost, http.MethodGet},
		{"/v1/factfind", http.MethodPost, http.MethodPut},
		{"/v1/factfind", http.MethodPost, http.MethodDelete},
		{"/metrics", http.MethodGet, http.MethodPost},
		{"/debug/runs", http.MethodGet, http.MethodPost},
		{"/debug/runs/some-id", http.MethodGet, http.MethodPut},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.wrong, ts.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.wrong, c.path, resp.StatusCode)
			continue
		}
		if got := resp.Header.Get("Allow"); got != c.allowed {
			t.Errorf("%s %s: Allow = %q, want %q", c.wrong, c.path, got, c.allowed)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, c.allowed) {
			t.Errorf("%s %s: body %q does not name the allowed method", c.wrong, c.path, body)
		}
	}
}

// traceIDField erases the traceID value so response bodies can be compared
// byte-for-byte modulo the one per-request field.
var traceIDField = regexp.MustCompile(`"traceID":"[^"]*"`)

// TestCacheHitByteIdentical: the second identical request is answered from
// the cache with the exact bytes of the first response, TraceID aside — at
// serial and parallel worker counts.
func TestCacheHitByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv := New(Options{Seed: 1, Workers: workers})
			ts := httptest.NewServer(srv)
			defer ts.Close()
			req := sampleRequest()
			req.Algorithm = "EM-Ext"
			raw, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			post := func() (*http.Response, []byte) {
				resp, err := http.Post(ts.URL+"/v1/factfind", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				return resp, body
			}

			r1, b1 := post()
			if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Cache") != "miss" {
				t.Fatalf("first: status %d X-Cache %q: %s", r1.StatusCode, r1.Header.Get("X-Cache"), b1)
			}
			r2, b2 := post()
			if r2.StatusCode != http.StatusOK || r2.Header.Get("X-Cache") != "hit" {
				t.Fatalf("second: status %d X-Cache %q: %s", r2.StatusCode, r2.Header.Get("X-Cache"), b2)
			}

			var o1, o2 Response
			if err := json.Unmarshal(b1, &o1); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(b2, &o2); err != nil {
				t.Fatal(err)
			}
			if o1.TraceID == "" || o2.TraceID == "" || o1.TraceID == o2.TraceID {
				t.Fatalf("trace ids should be fresh per request: %q vs %q", o1.TraceID, o2.TraceID)
			}
			n1 := traceIDField.ReplaceAll(b1, []byte(`"traceID":""`))
			n2 := traceIDField.ReplaceAll(b2, []byte(`"traceID":""`))
			if !bytes.Equal(n1, n2) {
				t.Fatalf("replay not byte-identical modulo TraceID:\n%s\n%s", n1, n2)
			}

			reg := srv.Metrics()
			if hits := reg.Counter(MetricCacheHits, "").Value(); hits != 1 {
				t.Fatalf("cache hits = %v, want 1", hits)
			}
			if misses := reg.Counter(MetricCacheMisses, "").Value(); misses != 1 {
				t.Fatalf("cache misses = %v, want 1", misses)
			}
			if entries := reg.Gauge(MetricCacheEntries, "").Value(); entries != 1 {
				t.Fatalf("cache entries = %v, want 1", entries)
			}
		})
	}
}

// TestCoalescing: K concurrent identical requests execute the pipeline
// exactly once; every caller receives the very same bytes (TraceID
// included — they shared one run).
func TestCoalescing(t *testing.T) {
	srv := New(Options{Seed: 1})
	var runs atomic.Int32
	gate := make(chan struct{})
	srv.testComputeHook = func() {
		runs.Add(1)
		<-gate
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := sampleRequest()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	key := srv.resultKey(req, "Voting", 5)

	const K = 6
	bodies := make([][]byte, K)
	statuses := make([]int, K)
	states := make([]string, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/factfind", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			states[i] = resp.Header.Get("X-Cache")
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}

	// Hold the leader until every caller is attached to the flight, then
	// release — all K were provably concurrent with the single run.
	waitFor(t, "all callers coalesced", func() bool { return srv.coalesce.Pending(key) == K })
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times for %d concurrent identical requests", got, K)
	}
	coalesced, miss := 0, 0
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0:\n%s\n%s", i, bodies[i], bodies[0])
		}
		switch states[i] {
		case "coalesced":
			coalesced++
		case "miss":
			miss++
		default:
			t.Fatalf("request %d: X-Cache %q", i, states[i])
		}
	}
	if miss != 1 || coalesced != K-1 {
		t.Fatalf("X-Cache split: %d miss, %d coalesced; want 1 and %d", miss, coalesced, K-1)
	}

	reg := srv.Metrics()
	if got := reg.Counter(MetricCoalesced, "").Value(); got != K-1 {
		t.Fatalf("coalesced counter = %v, want %d", got, K-1)
	}
	if added, _ := srv.Flight().Stats(); added != 1 {
		t.Fatalf("flight recorder saw %d runs, want 1", added)
	}
}

// TestShedOverCapacity: with the pool saturated and no queue, additional
// computations get 429 + Retry-After immediately, and the channel-token
// accounting drains cleanly once the blocker finishes.
func TestShedOverCapacity(t *testing.T) {
	srv := New(Options{Seed: 1, MaxInFlight: 1, QueueDepth: 0})
	gate := make(chan struct{})
	srv.testComputeHook = func() { <-gate }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(topK int) (*http.Response, []byte, error) {
		req := sampleRequest()
		req.TopK = topK // distinct content hash per topK: no coalescing
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/factfind", "application/json", bytes.NewReader(raw))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp, body, err
	}

	blockerDone := make(chan int, 1)
	go func() {
		resp, _, err := post(5)
		if err != nil {
			blockerDone <- -1
			return
		}
		blockerDone <- resp.StatusCode
	}()
	waitFor(t, "blocker to hold the slot", func() bool { return srv.admission.InFlight() == 1 })

	const shedWant = 5
	for i := 0; i < shedWant; i++ {
		resp, body, err := post(10 + i)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-capacity request %d: status %d, want 429: %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("429 without Retry-After")
		}
	}

	close(gate)
	if status := <-blockerDone; status != http.StatusOK {
		t.Fatalf("blocker finished with status %d", status)
	}
	if f, q := srv.admission.InFlight(), srv.admission.Queued(); f != 0 || q != 0 {
		t.Fatalf("accounting did not drain: inFlight=%d queued=%d", f, q)
	}
	reg := srv.Metrics()
	if got := reg.Counter(MetricShed, "", obs.L("reason", "queue-full")).Value(); got != shedWant {
		t.Fatalf("shed{queue-full} = %v, want %d", got, shedWant)
	}
	if got := reg.Gauge(MetricComputeInFlight, "").Value(); got != 0 {
		t.Fatalf("in-flight gauge = %v, want 0", got)
	}
}

// TestQueueThenShed: one computation runs, one waits in the depth-1 queue,
// the third sheds; releasing the runner lets the queued one through.
func TestQueueThenShed(t *testing.T) {
	srv := New(Options{Seed: 1, MaxInFlight: 1, QueueDepth: 1})
	gate := make(chan struct{})
	srv.testComputeHook = func() { <-gate }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(topK int, done chan int) {
		req := sampleRequest()
		req.TopK = topK
		raw, err := json.Marshal(req)
		if err != nil {
			done <- -1
			return
		}
		resp, err := http.Post(ts.URL+"/v1/factfind", "application/json", bytes.NewReader(raw))
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}

	aDone, bDone := make(chan int, 1), make(chan int, 1)
	go post(5, aDone)
	waitFor(t, "A to hold the slot", func() bool { return srv.admission.InFlight() == 1 })
	go post(6, bDone)
	waitFor(t, "B to queue", func() bool { return srv.admission.Queued() == 1 })

	cDone := make(chan int, 1)
	go post(7, cDone)
	if status := <-cDone; status != http.StatusTooManyRequests {
		t.Fatalf("C with the queue full: status %d, want 429", status)
	}

	close(gate)
	if status := <-aDone; status != http.StatusOK {
		t.Fatalf("A finished with status %d", status)
	}
	if status := <-bDone; status != http.StatusOK {
		t.Fatalf("B finished with status %d", status)
	}
	if f, q := srv.admission.InFlight(), srv.admission.Queued(); f != 0 || q != 0 {
		t.Fatalf("accounting did not drain: inFlight=%d queued=%d", f, q)
	}
}

// TestDeadlineAdmission: once the fit-stage histogram shows a p50 cost the
// remaining compute budget cannot cover, requests are rejected up front
// with 503 — the pipeline never starts.
func TestDeadlineAdmission(t *testing.T) {
	srv := New(Options{Seed: 1, ComputeTimeout: 50 * time.Millisecond})
	var ran atomic.Bool
	srv.testComputeHook = func() { ran.Store(true) }
	// Teach the histogram an observed fit cost far above the budget.
	srv.Metrics().Histogram(MetricStageSeconds, helpStageSeconds,
		nil, obs.L("stage", "fit")).Observe(2.0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL, sampleRequest())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("budget 503 without Retry-After")
	}
	var e struct {
		Error   string `json:"error"`
		Stopped string `json:"stopped"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "insufficient compute budget") || e.Stopped != "deadline" {
		t.Fatalf("unexpected budget rejection body: %s", body)
	}
	if ran.Load() {
		t.Fatal("pipeline ran despite the budget rejection")
	}
	if got := srv.Metrics().Counter(MetricShed, "", obs.L("reason", "budget")).Value(); got != 1 {
		t.Fatalf("shed{budget} = %v, want 1", got)
	}
}

// TestCacheDisabled: a negative CacheSize turns replay off — identical
// sequential requests each compute.
func TestCacheDisabled(t *testing.T) {
	srv := New(Options{Seed: 1, CacheSize: -1})
	var runs atomic.Int32
	srv.testComputeHook = func() { runs.Add(1) }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL, sampleRequest())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("request %d: X-Cache %q, want miss", i, got)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("pipeline ran %d times with the cache disabled, want 2", got)
	}
}
