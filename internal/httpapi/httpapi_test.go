package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer() *httptest.Server {
	return httptest.NewServer(New(Options{Seed: 1}))
}

func postJSON(t *testing.T, url string, req Request) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/factfind", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func sampleRequest() Request {
	return Request{
		Sources: 4,
		Follows: [][2]int{{1, 0}},
		Messages: []Message{
			{Source: 0, Time: 1, Text: "witness2 reported fire near plaza3 n42 #demo"},
			{Source: 1, Time: 2, Text: "rt @user0: witness2 reported fire near plaza3 n42 #demo"},
			{Source: 2, Time: 3, Text: "official7 denied outage near campus9 n17 #demo"},
			{Source: 3, Time: 4, Text: "official7 denied outage near campus9 n17 #demo update"},
		},
		Algorithm: "Voting",
		TopK:      5,
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAlgorithms(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out["algorithms"]) != 9 || out["algorithms"][0] != "EM-Ext" {
		t.Fatalf("algorithms = %v", out["algorithms"])
	}
}

func TestFactFind(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, body := postJSON(t, ts.URL, sampleRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "Voting" || out.Assertions != 2 || out.Dependent != 1 {
		t.Fatalf("response: %+v", out)
	}
	if len(out.Ranked) != 2 {
		t.Fatalf("ranked: %+v", out.Ranked)
	}
	if out.Ranked[0].Text == "" || out.Ranked[0].Claims == 0 {
		t.Fatalf("ranked row incomplete: %+v", out.Ranked[0])
	}
}

func TestFactFindTwitterJSON(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	archive := strings.Join([]string{
		`{"id_str":"1","text":"explosion near bridge7 n4 #x","created_at":"Sat Mar 14 10:00:00 +0000 2015","user":{"id_str":"42","screen_name":"alice"}}`,
		`{"id_str":"2","text":"RT @alice: explosion near bridge7 n4 #x","created_at":"Sat Mar 14 10:05:00 +0000 2015","user":{"id_str":"77"},"retweeted_status":{"id_str":"1","user":{"id_str":"42"}}}`,
	}, "\n")
	resp, body := postJSON(t, ts.URL, Request{
		Format:    "twitter-json",
		Archive:   archive,
		Algorithm: "EM-Ext",
		TopK:      3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sources != 2 || out.Claims != 2 || out.Dependent != 1 {
		t.Fatalf("response: %+v", out)
	}
}

func TestFactFindErrors(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/factfind")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}

	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/v1/factfind", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed status %d", resp.StatusCode)
	}

	// Unknown field (DisallowUnknownFields).
	resp, err = http.Post(ts.URL+"/v1/factfind", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field status %d", resp.StatusCode)
	}

	// Unknown algorithm.
	req := sampleRequest()
	req.Algorithm = "Oracle"
	r2, body := postJSON(t, ts.URL, req)
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-alg status %d: %s", r2.StatusCode, body)
	}

	// No messages.
	req = sampleRequest()
	req.Messages = nil
	r3, _ := postJSON(t, ts.URL, req)
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-messages status %d", r3.StatusCode)
	}

	// Out-of-range follow edge.
	req = sampleRequest()
	req.Follows = [][2]int{{0, 99}}
	r4, _ := postJSON(t, ts.URL, req)
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-edge status %d", r4.StatusCode)
	}
}

// TestBodyLimit: a body over the configured MaxBodyBytes is the client's
// size problem, not a malformed payload — 413 with a message naming the
// limit, distinct from the 400 decode error.
func TestBodyLimit(t *testing.T) {
	ts := httptest.NewServer(New(Options{MaxBodyBytes: 64}))
	defer ts.Close()
	big := `{"sources":1,"messages":[{"source":0,"time":1,"text":"` + strings.Repeat("x", 500) + `"}]}`
	resp, err := http.Post(ts.URL+"/v1/factfind", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize status %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "64-byte limit") {
		t.Fatalf("413 error %q does not name the limit", e.Error)
	}
}

// TestHealthzMethod: /healthz is GET-only like every other endpoint.
func TestHealthzMethod(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status %d, want 405", resp.StatusCode)
	}
}

func TestFactFindComputeDeadline(t *testing.T) {
	ts := httptest.NewServer(New(Options{Seed: 1, ComputeTimeout: time.Nanosecond}))
	defer ts.Close()
	req := sampleRequest()
	req.Algorithm = "EM-Ext"
	resp, body := postJSON(t, ts.URL, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Error   string `json:"error"`
		Stopped string `json:"stopped"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Stopped != "deadline" {
		t.Fatalf("stopped = %q (%s)", e.Stopped, body)
	}
	if e.Error == "" {
		t.Fatalf("empty error message: %s", body)
	}
}
