package httpapi

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"

	"depsense/internal/apollo"
	"depsense/internal/obs"
)

// Metric names recorded by the server (the estimator-level names live in
// internal/obs, the stream-level names in internal/stream; DESIGN.md §10
// has the full catalog).
const (
	// MetricRequests counts requests by endpoint and status code.
	MetricRequests = "depsense_http_requests_total"
	// MetricRequestSeconds is the request-latency histogram by endpoint.
	MetricRequestSeconds = "depsense_http_request_duration_seconds"
	// MetricInFlight gauges the requests currently being served.
	MetricInFlight = "depsense_http_in_flight_requests"
	// MetricStageSeconds is the pipeline per-stage duration histogram
	// (ingest / cluster / build / fit / rank).
	MetricStageSeconds = "depsense_pipeline_stage_duration_seconds"
	// MetricComputeExhausted counts /v1/factfind requests that returned
	// 503 because the compute budget ran out (or the client vanished),
	// labeled by the stop reason ("deadline" / "cancelled"). Unlike the
	// estimator-level obs.MetricRuns, this fires even when the budget
	// expired before the estimator started.
	MetricComputeExhausted = "depsense_http_compute_exhausted_total"
)

// reqIDKey carries the middleware-assigned request id through the request
// context, so handlers (and the traces they record) share the id the access
// log prints.
type reqIDKey struct{}

// requestID returns the middleware-assigned id for the request, allocating
// one when the handler runs outside instrument (direct handler tests).
func (s *Server) requestID(r *http.Request) uint64 {
	if id, ok := r.Context().Value(reqIDKey{}).(uint64); ok {
		return id
	}
	return s.nextReqID.Add(1)
}

// statusRecorder captures the status code and body size a handler writes,
// defaulting to 200 when the handler never calls WriteHeader explicitly.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with the request middleware: per-endpoint
// request/status counters, a latency histogram, the in-flight gauge, and a
// request-id-tagged access log line. The endpoint label is the registered
// route, never the raw URL, so label cardinality stays bounded.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.nextReqID.Add(1)
		start := s.clock()
		inFlight := s.reg.Gauge(MetricInFlight, "Requests currently being served.")
		inFlight.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))
		h(rec, r)
		inFlight.Dec()
		elapsed := s.clock().Sub(start)

		s.reg.Counter(MetricRequests, "HTTP requests by endpoint and status code.",
			obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(rec.status))).Inc()
		s.reg.Histogram(MetricRequestSeconds, "HTTP request latency in seconds by endpoint.",
			nil, obs.L("endpoint", endpoint)).Observe(elapsed.Seconds())
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.Uint64("id", id),
			slog.String("method", r.Method),
			slog.String("endpoint", endpoint),
			slog.Int("status", rec.status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("elapsed", elapsed),
		)
	}
}

// recordStages exports the pipeline's per-stage timings; partial runs
// carry only the stages they completed.
func (s *Server) recordStages(stages []apollo.StageTiming) {
	for _, st := range stages {
		s.reg.Histogram(MetricStageSeconds,
			"Pipeline per-stage duration in seconds (ingest, cluster, build, fit, rank).",
			nil, obs.L("stage", st.Stage)).Observe(st.Duration.Seconds())
	}
}
