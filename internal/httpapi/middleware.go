package httpapi

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"depsense/internal/apollo"
	"depsense/internal/obs"
)

// Metric names recorded by the server (the estimator-level names live in
// internal/obs, the stream-level names in internal/stream; DESIGN.md §10
// has the full catalog).
const (
	// MetricRequests counts requests by endpoint and status code.
	MetricRequests = "depsense_http_requests_total"
	// MetricRequestSeconds is the request-latency histogram by endpoint.
	MetricRequestSeconds = "depsense_http_request_duration_seconds"
	// MetricInFlight gauges the requests currently being served.
	MetricInFlight = "depsense_http_in_flight_requests"
	// MetricStageSeconds is the pipeline per-stage duration histogram
	// (ingest / cluster / build / fit / rank).
	MetricStageSeconds = "depsense_pipeline_stage_duration_seconds"
	// MetricComputeExhausted counts /v1/factfind requests that returned
	// 503 because the compute budget ran out (or the client vanished),
	// labeled by the stop reason ("deadline" / "cancelled"). Unlike the
	// estimator-level obs.MetricRuns, this fires even when the budget
	// expired before the estimator started.
	MetricComputeExhausted = "depsense_http_compute_exhausted_total"
)

// Middleware is the request instrumentation shared by every depsense HTTP
// surface (this package's fact-finding server, the ingestion service's
// status server): per-endpoint request/status counters, a latency
// histogram, an in-flight gauge, and request-id-tagged access logging. It
// exists as a standalone type so thin servers can reuse the exact metric
// names and logging shape without importing the whole fact-finding API.
type Middleware struct {
	// Reg receives the request metrics; required.
	Reg *obs.Registry
	// Log receives one access line per request; required (use a discard
	// handler to silence).
	Log *slog.Logger
	// Clock supplies request timestamps; required, injected per the
	// clocked-zone contract.
	Clock func() time.Time

	nextReqID atomic.Uint64
}

// NewMiddleware wires the instrumentation stack; nil registry, logger, or
// clock select a fresh registry, a wall clock, and a discard logger via the
// same defaults New applies.
func NewMiddleware(reg *obs.Registry, log *slog.Logger, clock func() time.Time) *Middleware {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if log == nil {
		log = discardLogger()
	}
	if clock == nil {
		clock = time.Now
	}
	return &Middleware{Reg: reg, Log: log, Clock: clock}
}

// reqIDKey carries the middleware-assigned request id through the request
// context, so handlers (and the traces they record) share the id the access
// log prints.
type reqIDKey struct{}

// RequestID returns the middleware-assigned id for the request, allocating
// one when the handler runs outside Instrument (direct handler tests).
func (m *Middleware) RequestID(r *http.Request) uint64 {
	if id, ok := r.Context().Value(reqIDKey{}).(uint64); ok {
		return id
	}
	return m.nextReqID.Add(1)
}

// statusRecorder captures the status code and body size a handler writes,
// defaulting to 200 when the handler never calls WriteHeader explicitly.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Instrument wraps a handler with the request middleware. The endpoint
// label is the registered route, never the raw URL, so label cardinality
// stays bounded.
func (m *Middleware) Instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := m.nextReqID.Add(1)
		start := m.Clock()
		inFlight := m.Reg.Gauge(MetricInFlight, "Requests currently being served.")
		inFlight.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))
		h(rec, r)
		inFlight.Dec()
		elapsed := m.Clock().Sub(start)

		m.Reg.Counter(MetricRequests, "HTTP requests by endpoint and status code.",
			obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(rec.status))).Inc()
		m.Reg.Histogram(MetricRequestSeconds, "HTTP request latency in seconds by endpoint.",
			nil, obs.L("endpoint", endpoint)).Observe(elapsed.Seconds())
		m.Log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.Uint64("id", id),
			slog.String("method", r.Method),
			slog.String("endpoint", endpoint),
			slog.Int("status", rec.status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("elapsed", elapsed),
		)
	}
}

// instrument and requestID keep the server's historical internal surface,
// delegating to the shared middleware.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return s.mw.Instrument(endpoint, h)
}

func (s *Server) requestID(r *http.Request) uint64 { return s.mw.RequestID(r) }

// recordStages exports the pipeline's per-stage timings; partial runs
// carry only the stages they completed.
func (s *Server) recordStages(stages []apollo.StageTiming) {
	for _, st := range stages {
		s.reg.Histogram(MetricStageSeconds, helpStageSeconds,
			nil, obs.L("stage", st.Stage)).Observe(st.Duration.Seconds())
	}
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteError writes err as the standard {"error": ...} JSON body.
func WriteError(w http.ResponseWriter, status int, err error) { writeError(w, status, err) }
