package httpapi

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/core"
	"depsense/internal/obs"
	"depsense/internal/qual"
	"depsense/internal/runctx"
	"depsense/internal/serve"
	"depsense/internal/trace"
)

// Serving-layer metric names (the request-level names live in
// middleware.go, the estimator-level names in internal/obs).
const (
	// MetricCacheHits counts factfind requests answered from the result
	// cache without any computation.
	MetricCacheHits = "depsense_serve_cache_hits_total"
	// MetricCacheMisses counts factfind requests that could not be
	// answered from the cache (leaders and coalesced followers alike);
	// hits + misses equals the validated request total.
	MetricCacheMisses = "depsense_serve_cache_misses_total"
	// MetricCacheEntries gauges the result cache's current size.
	MetricCacheEntries = "depsense_serve_cache_entries"
	// MetricCoalesced counts requests that attached to another request's
	// in-flight computation instead of starting their own.
	MetricCoalesced = "depsense_serve_coalesced_requests_total"
	// MetricShed counts computations rejected by admission control, by
	// reason: "queue-full" (429) or "budget" (503, remaining deadline
	// cannot cover the observed p50 fit cost).
	MetricShed = "depsense_serve_shed_total"
	// MetricComputeInFlight gauges computations holding a compute slot.
	MetricComputeInFlight = "depsense_serve_compute_in_flight"
	// MetricComputeQueued gauges computations waiting for a compute slot.
	MetricComputeQueued = "depsense_serve_compute_queued"
)

// Serving-layer defaults, applied by New when the options are zero.
const (
	// DefaultCacheSize is the result-cache capacity in responses.
	DefaultCacheSize = 256
	// DefaultCacheTTL is how long a cached response stays servable.
	DefaultCacheTTL = 5 * time.Minute
)

// helpStageSeconds is shared between the stage-timing recorder and the
// deadline-admission reader so whichever touches the family first sets the
// same help text.
const helpStageSeconds = "Pipeline per-stage duration in seconds (ingest, cluster, build, fit, rank)."

// servedResult is one fully-rendered factfind outcome: the exact bytes
// (status line aside) every request attached to the computation writes.
// Followers of a coalesced run and the leader share one servedResult, which
// is what makes their responses byte-identical.
type servedResult struct {
	status     int
	body       []byte
	retryAfter string // Retry-After header value, "" for none
	fromCache  bool   // answered from the result cache (X-Cache: hit)
}

// methodOnly restricts a handler to one HTTP method, answering anything
// else with 405 plus the RFC 9110-required Allow header and the standard
// JSON error body.
func methodOnly(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Errorf("method %s not allowed; use %s", r.Method, method))
			return
		}
		h(w, r)
	}
}

// marshalBody renders v exactly as writeJSON would (json.Encoder appends a
// newline after the object), so cached replays and coalesced copies are
// byte-identical to directly-written responses.
func marshalBody(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the plain data types served here; keep the
		// contract (valid JSON + newline) even if it ever fires.
		return []byte(`{"error":"response encoding failed"}` + "\n")
	}
	return append(b, '\n')
}

// writeServed writes one rendered result, tagging the response with how the
// serving layer produced it (X-Cache: hit, miss, or coalesced).
func writeServed(w http.ResponseWriter, res *servedResult, cacheState string) {
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// canonicalAlgorithm resolves a request's algorithm field (default EM-Ext,
// matched case-insensitively) against the name list built once in New,
// without constructing any finder.
func (s *Server) canonicalAlgorithm(name string) (string, bool) {
	if name == "" {
		name = "EM-Ext"
	}
	for _, n := range s.algorithms {
		if strings.EqualFold(n, name) {
			return n, true
		}
	}
	return "", false
}

// resultKey derives the content-hash cache key from the normalized request
// plus the server options that shape the result: source space, sorted
// follow edges, the message stream (order preserved — clustering is
// order-sensitive), archive payload, lowercased format, canonical
// algorithm name, resolved topK, and the server's seed and worker count.
// Two requests with the same key are entitled to byte-identical responses
// (trace id aside).
func (s *Server) resultKey(req Request, algorithm string, topK int) string {
	follows := append([][2]int(nil), req.Follows...)
	sort.Slice(follows, func(i, j int) bool {
		if follows[i][0] != follows[j][0] {
			return follows[i][0] < follows[j][0]
		}
		return follows[i][1] < follows[j][1]
	})
	payload := struct {
		Sources   int       `json:"sources"`
		Follows   [][2]int  `json:"follows"`
		Messages  []Message `json:"messages"`
		Archive   string    `json:"archive"`
		Format    string    `json:"format"`
		Algorithm string    `json:"algorithm"`
		TopK      int       `json:"topK"`
		Seed      int64     `json:"seed"`
		Workers   int       `json:"workers"`
	}{req.Sources, follows, req.Messages, req.Archive,
		strings.ToLower(req.Format), algorithm, topK, s.opts.Seed, s.opts.Workers}
	b, err := json.Marshal(payload)
	if err != nil {
		return "" // unreachable: plain data marshals; "" is never stored
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// cachedResponse looks the key up in the result cache.
func (s *Server) cachedResponse(key string) (Response, bool) {
	if key == "" {
		return Response{}, false
	}
	v, ok := s.cache.Get(key, s.clock())
	if !ok {
		return Response{}, false
	}
	return v.(Response), true
}

// replayCached turns a cached response into a served result: a fresh
// lightweight trace is recorded (so the replayed TraceID still resolves at
// /debug/runs/{id}) and stamped into a copy of the response. Everything
// but the TraceID is byte-identical to the cold computation. Replays are
// not spilled to TraceDir — the spill is a post-mortem record of
// computations, and a replay computes nothing. Counters are the caller's
// business: the front door counts a hit, the leader's double-check path
// already counted its request as a miss.
func (s *Server) replayCached(r *http.Request, resp Response, algorithm string) *servedResult {
	tb := s.newRunTrace(r, algorithm)
	tb.SetAttr("cache", "hit")
	t := tb.Finish(trace.StatusOK, "")
	s.flight.Record(t)
	resp.TraceID = t.ID
	return &servedResult{status: http.StatusOK, body: marshalBody(resp), fromCache: true}
}

// fitP50 reads the estimator's observed median cost from the fit-stage
// latency histogram: NaN before the first completed fit.
func (s *Server) fitP50() float64 {
	return s.reg.Histogram(MetricStageSeconds, helpStageSeconds,
		nil, obs.L("stage", "fit")).Quantile(0.5)
}

// retryAfterSeconds derives the Retry-After hint for shed responses from
// the observed median fit cost, defaulting to 1s with no data.
func (s *Server) retryAfterSeconds() string {
	p50 := s.fitP50()
	if math.IsNaN(p50) || math.IsInf(p50, 1) || p50 < 1 {
		return "1"
	}
	return strconv.Itoa(int(math.Ceil(p50)))
}

// checkBudget is the deadline-aware admission check: with a compute budget
// configured and at least one observed fit, a request whose remaining
// budget cannot cover the estimator's p50 cost is rejected up front with
// 503 instead of burning the pool on a computation that is overwhelmingly
// likely to be killed at the deadline. start is when the budget clock
// began (leader entry, before any queueing).
func (s *Server) checkBudget(start time.Time) *servedResult {
	if s.opts.ComputeTimeout <= 0 {
		return nil
	}
	p50 := s.fitP50()
	if math.IsNaN(p50) {
		return nil // no observed cost yet: admit and learn
	}
	remaining := s.opts.ComputeTimeout - s.clock().Sub(start)
	if remaining.Seconds() >= p50 {
		return nil
	}
	s.reg.Counter(MetricShed,
		"Computations rejected by admission control, by reason.",
		obs.L("reason", "budget")).Inc()
	e := apiError{
		Error: fmt.Sprintf(
			"insufficient compute budget: %s remaining cannot cover the observed p50 fit cost of %.3fs",
			remaining.Round(time.Millisecond), p50),
		Stopped: runctx.StopDeadline,
	}
	return &servedResult{
		status:     http.StatusServiceUnavailable,
		body:       marshalBody(e),
		retryAfter: s.retryAfterSeconds(),
	}
}

// computeResult is the singleflight leader: it owns the one pipeline run
// every coalesced request shares. The computation is detached from the
// leader's client (a coalesced run may be serving many clients, so one
// disconnect must not kill it); the compute budget is the backstop. Its
// budget clock starts here — time spent queued for a compute slot burns
// budget, which is exactly what the deadline-aware admission check audits.
func (s *Server) computeResult(r *http.Request, req Request, algorithm string, topK int, key string) *servedResult {
	ctx := context.WithoutCancel(r.Context())
	start := s.clock()
	if s.opts.ComputeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.ComputeTimeout)
		defer cancel()
	}

	// The computation may have finished (and been cached) between this
	// request's cache miss and its election as leader.
	if resp, ok := s.cachedResponse(key); ok {
		return s.replayCached(r, resp, algorithm)
	}

	in, err := s.buildInput(req)
	if err != nil {
		return &servedResult{status: http.StatusBadRequest, body: marshalBody(apiError{Error: err.Error()})}
	}

	// Deadline-aware admission, checked before queueing (reject hopeless
	// work without occupying a queue position) and again after the slot
	// arrives (queue wait burned budget).
	if res := s.checkBudget(start); res != nil {
		return res
	}
	release, err := s.admission.Acquire(ctx)
	if err != nil {
		if errors.Is(err, serve.ErrShed) {
			s.reg.Counter(MetricShed,
				"Computations rejected by admission control, by reason.",
				obs.L("reason", "queue-full")).Inc()
			return &servedResult{
				status:     http.StatusTooManyRequests,
				body:       marshalBody(apiError{Error: "server over capacity: compute pool and admission queue are full"}),
				retryAfter: s.retryAfterSeconds(),
			}
		}
		// The compute budget expired while waiting in the queue.
		reason := runctx.StopCancelled
		if errors.Is(err, context.DeadlineExceeded) {
			reason = runctx.StopDeadline
		}
		s.reg.Counter(MetricComputeExhausted,
			"Factfind requests rejected with 503 because the compute budget ran out, by stop reason.",
			obs.L("reason", reason)).Inc()
		return &servedResult{
			status:     http.StatusServiceUnavailable,
			body:       marshalBody(apiError{Error: fmt.Sprintf("compute budget exhausted while queued (%s): %v", reason, err), Stopped: reason}),
			retryAfter: s.retryAfterSeconds(),
		}
	}
	defer release()
	if res := s.checkBudget(start); res != nil {
		return res
	}

	if s.testComputeHook != nil {
		s.testComputeHook()
	}

	finder := baselines.ExtendedByName(algorithm, core.Options{Seed: s.opts.Seed, Workers: s.opts.Workers})
	// Estimator telemetry: one metrics exporter plus one trace recorder per
	// computation, composed with MultiHook and serialized so parallel
	// compute paths (EM restart fan-out at Workers > 1) never fire them
	// concurrently — counter values and traces stay identical at any worker
	// count.
	tb := s.newRunTrace(r, algorithm)
	hctx := runctx.WithHook(ctx, runctx.MultiHook(obs.HookExporter(s.reg), tb.Hook()))
	hctx = runctx.WithSerializedHook(hctx)
	out, err := apollo.RunContext(hctx, in, finder, apollo.Options{TopK: topK, Clock: s.clock})
	if out != nil {
		s.recordStages(out.Stages)
	}
	traceID := s.finishRunTrace(tb, out, err)
	if err != nil {
		if reason := runctx.Reason(err); reason != "" {
			// Compute budget exhausted — report the partial progress,
			// distinguished from estimator failure.
			s.reg.Counter(MetricComputeExhausted,
				"Factfind requests rejected with 503 because the compute budget ran out, by stop reason.",
				obs.L("reason", reason)).Inc()
			e := apiError{
				Error:   fmt.Sprintf("compute budget exhausted (%s): %v", reason, err),
				Stopped: reason,
				TraceID: traceID,
			}
			if out != nil && out.Result != nil {
				e.Iterations = out.Result.Iterations
			}
			return &servedResult{status: http.StatusServiceUnavailable, body: marshalBody(e), retryAfter: s.retryAfterSeconds()}
		}
		status := http.StatusBadRequest
		if !errors.Is(err, apollo.ErrNoMessages) && !errors.Is(err, apollo.ErrGraphSize) {
			status = http.StatusInternalServerError
		}
		return &servedResult{status: status, body: marshalBody(apiError{Error: err.Error(), TraceID: traceID})}
	}

	// Feed the estimation-quality monitor: calibration of this result's
	// posteriors against the Voting baseline. Only genuine computations
	// reach here (cache replays return earlier), so quality ticks count
	// distinct fits. The spill-less monitor never errors.
	_, _ = s.qual.ObserveRefit(ctx, qual.Refit{Result: out.Result, Dataset: out.Dataset, Edges: -1})

	resp := Response{
		Algorithm:  algorithm,
		Sources:    out.Dataset.N(),
		Assertions: out.Dataset.M(),
		Claims:     out.Dataset.NumClaims(),
		Dependent:  out.Dataset.NumDependentClaims(),
		Converged:  out.Result.Converged,
		Iterations: out.Result.Iterations,
		Stopped:    out.Result.Stopped,
		TraceID:    traceID,
	}
	for _, c := range out.Ranked {
		claimants := out.Dataset.Claimants(c)
		dep := 0
		for _, cl := range claimants {
			if cl.Dependent {
				dep++
			}
		}
		resp.Ranked = append(resp.Ranked, RankedAssertion{
			Assertion: c,
			Posterior: out.Result.Posterior[c],
			Text:      out.RepresentativeText[c],
			Claims:    len(claimants),
			Dependent: dep,
		})
	}
	if key != "" {
		// The cached copy carries no TraceID; replays stamp their own.
		cached := resp
		cached.TraceID = ""
		s.cache.Put(key, cached, s.clock())
		s.reg.Gauge(MetricCacheEntries, "Result cache entries currently held.").
			Set(float64(s.cache.Len()))
	}
	return &servedResult{status: http.StatusOK, body: marshalBody(resp)}
}
