// Package trace is the per-run forensics layer of the serving stack: where
// internal/obs aggregates iteration records into scrapeable counters, this
// package keeps the records — each run becomes a deterministic tree
// (request → pipeline stage → algorithm run → per-iteration event) that can
// be replayed after the fact to answer questions aggregates cannot: why did
// *this* EM-Ext run stop at the iteration cap, did the Gibbs chains behind
// *this* bound estimate actually mix, which pipeline stage ate the compute
// budget of *this* cancelled request.
//
// The package is stdlib-only and splits into four pieces:
//
//   - the trace model and Builder (this file): a concurrent-safe recorder
//     whose Hook plugs into runctx.WithHook (compose with other observers
//     via runctx.MultiHook) and whose Finish canonicalizes the record;
//   - a JSONL codec (jsonl.go): one trace per line, deterministic bytes;
//   - a flight recorder (recorder.go): fixed-capacity ring buffers holding
//     the last K completed and, separately, the last K' failed/cancelled
//     traces, so errors are never evicted by healthy traffic;
//   - a diagnostics layer (diag.go): EM log-likelihood monotonicity and
//     plateau detection, per-restart comparison, and split-chain R-hat over
//     multi-chain Gibbs checkpoint trajectories.
//
// Determinism contract: every field of a finished Trace except the
// clearly-marked timing fields (StartUnixNS, DurationNS, Stage.DurationNS,
// Event.ElapsedNS) is a bit-for-bit deterministic function of the run's
// seed and inputs at any Workers value. Concurrent fan-outs (EM restarts,
// Gibbs chains) emit records in scheduler order, so Finish sorts each run's
// events by their deterministic fields — the sorted sequence is identical
// however the scheduler interleaved the firings. StripTimings zeroes the
// timing fields for byte-level determinism diffs.
package trace

import (
	"sort"
	"sync"
	"time"

	"depsense/internal/mapsort"
	"depsense/internal/runctx"
)

// Trace statuses. A trace is "failed" (retained in the flight recorder's
// error ring) for any status other than StatusOK.
const (
	// StatusOK marks a run that completed normally (converged or hit its
	// iteration cap — both are successful terminations).
	StatusOK = "ok"
	// StatusCancelled marks a run cut short by context cancellation.
	StatusCancelled = runctx.StopCancelled
	// StatusDeadline marks a run cut short by a context deadline.
	StatusDeadline = runctx.StopDeadline
	// StatusError marks a run that failed outright (estimator or pipeline
	// error); Trace.Error carries the message.
	StatusError = "error"
)

// StatusOf derives a trace status from a run-ending error: StatusOK for
// nil, the matching stop reason for cancellation/deadline, StatusError
// otherwise.
func StatusOf(err error) string {
	if err == nil {
		return StatusOK
	}
	if reason := runctx.Reason(err); reason != "" {
		return reason
	}
	return StatusError
}

// Attr is one key="value" annotation on a trace (algorithm, dataset shape,
// worker count). Attrs are sorted by key at Finish.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is one recorded runctx.Iteration: an EM iteration, a Gibbs sweep
// checkpoint, an enumeration block, or a heuristic round. All fields except
// ElapsedNS are deterministic.
type Event struct {
	// N is the 1-based iteration / checkpoint number within its chain.
	N int `json:"n"`
	// Chain is the restart / Gibbs chain index that fired the record.
	Chain int `json:"chain,omitempty"`
	// LogLikelihood is the data log-likelihood when HasLL is set.
	LogLikelihood float64 `json:"logLikelihood,omitempty"`
	// HasLL marks LogLikelihood as meaningful (a genuine 0.0 included).
	HasLL bool `json:"hasLL,omitempty"`
	// Value is the algorithm's scalar trajectory statistic when HasValue is
	// set (gibbs-bound: the checkpoint's batch-mean conditional error).
	Value float64 `json:"value,omitempty"`
	// HasValue marks Value as meaningful.
	HasValue bool `json:"hasValue,omitempty"`
	// Samples is the cumulative sample / pattern count, when the layer
	// reports one.
	Samples int `json:"samples,omitempty"`
	// Done marks the run's final firing; Stopped carries its stop reason.
	Done    bool   `json:"done,omitempty"`
	Stopped string `json:"stopped,omitempty"`
	// ElapsedNS is wall-clock time since the run started — a TIMING field,
	// excluded from the determinism contract.
	ElapsedNS int64 `json:"elapsedNS,omitempty"`
}

// Run groups one algorithm's events within a trace. A pipeline request
// usually holds one run per estimator variant it executed (EM-Ext's sparse
// plug-in mode, for example, records an EM-Social run and the EM-Ext
// re-score that follows it).
type Run struct {
	// Algorithm is the runctx display name ("EM-Ext", "gibbs-bound", ...).
	Algorithm string `json:"algorithm"`
	// Events is the canonicalized event sequence: sorted by (Chain, N,
	// Samples, Done, Stopped, LogLikelihood, Value), which is a total order
	// over the deterministic fields, so the sequence is identical at any
	// Workers value.
	Events []Event `json:"events"`
}

// Iterations returns the largest iteration number any chain reached.
func (r *Run) Iterations() int {
	max := 0
	for i := range r.Events {
		if r.Events[i].N > max {
			max = r.Events[i].N
		}
	}
	return max
}

// Chains returns the number of distinct chain indexes that fired events.
func (r *Run) Chains() int {
	seen := map[int]bool{}
	for i := range r.Events {
		seen[r.Events[i].Chain] = true
	}
	return len(seen)
}

// Stopped returns the stop reason of the run's final firing, "" if the run
// never fired a Done record (cut short before any final event).
func (r *Run) Stopped() string {
	for i := range r.Events {
		if r.Events[i].Done && r.Events[i].Stopped != "" {
			return r.Events[i].Stopped
		}
	}
	return ""
}

// Stage is the measured duration of one pipeline stage, in execution order.
type Stage struct {
	Name string `json:"name"`
	// DurationNS is a TIMING field, excluded from the determinism contract.
	DurationNS int64 `json:"durationNS"`
}

// Trace is one finished run record.
type Trace struct {
	// ID identifies the trace; callers assign it (the HTTP layer derives it
	// from the request id). IDs should be unique within a flight recorder.
	ID string `json:"id"`
	// Name names the workload ("factfind", "apollo", "experiments").
	Name string `json:"name"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Error carries the failure message when Status is StatusError.
	Error string `json:"error,omitempty"`
	// Attrs are the trace's annotations, sorted by key.
	Attrs []Attr `json:"attrs,omitempty"`
	// Stages are the pipeline stage timings in execution order.
	Stages []Stage `json:"stages,omitempty"`
	// Runs are the algorithm runs, sorted by algorithm name.
	Runs []*Run `json:"runs,omitempty"`
	// Diagnostics is the convergence analysis computed at Finish.
	Diagnostics *Diagnostics `json:"diagnostics,omitempty"`
	// StartUnixNS and DurationNS are TIMING fields, excluded from the
	// determinism contract.
	StartUnixNS int64 `json:"startUnixNS"`
	DurationNS  int64 `json:"durationNS"`
}

// Failed reports whether the trace belongs in the flight recorder's
// error ring: any status other than StatusOK.
func (t *Trace) Failed() bool { return t.Status != StatusOK }

// Events returns the total event count across runs.
func (t *Trace) Events() int {
	n := 0
	for _, r := range t.Runs {
		n += len(r.Events)
	}
	return n
}

// Summary is the index-listing view of a trace.
type Summary struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Status      string `json:"status"`
	Runs        int    `json:"runs"`
	Events      int    `json:"events"`
	StartUnixNS int64  `json:"startUnixNS"`
	DurationNS  int64  `json:"durationNS"`
}

// Summary derives the trace's index entry.
func (t *Trace) Summary() Summary {
	return Summary{
		ID:          t.ID,
		Name:        t.Name,
		Status:      t.Status,
		Runs:        len(t.Runs),
		Events:      t.Events(),
		StartUnixNS: t.StartUnixNS,
		DurationNS:  t.DurationNS,
	}
}

// StripTimings returns a deep copy of the trace with every timing field
// zeroed (StartUnixNS, DurationNS, Stage.DurationNS, Event.ElapsedNS).
// Serializing the stripped copies of two runs and comparing bytes is the
// canonical determinism check: fixed seed, any Workers value, same bytes.
func (t *Trace) StripTimings() *Trace {
	c := *t
	c.StartUnixNS, c.DurationNS = 0, 0
	c.Attrs = append([]Attr(nil), t.Attrs...)
	c.Stages = make([]Stage, len(t.Stages))
	for i, s := range t.Stages {
		s.DurationNS = 0
		c.Stages[i] = s
	}
	c.Runs = make([]*Run, len(t.Runs))
	for i, r := range t.Runs {
		cr := &Run{Algorithm: r.Algorithm, Events: make([]Event, len(r.Events))}
		for j, e := range r.Events {
			e.ElapsedNS = 0
			cr.Events[j] = e
		}
		c.Runs[i] = cr
	}
	if t.Diagnostics != nil {
		d := *t.Diagnostics
		d.Runs = append([]RunDiag(nil), t.Diagnostics.Runs...)
		c.Diagnostics = &d
	}
	return &c
}

// Builder records one run in progress. All methods are safe for concurrent
// use: the Hook may fire from parallel estimator fan-outs while the serving
// goroutine records stages. A Builder is single-use; Finish seals it.
type Builder struct {
	mu       sync.Mutex
	id       string             // immutable after NewBuilder
	name     string             // immutable after NewBuilder
	attrs    []Attr             // guarded by mu
	stages   []Stage            // guarded by mu
	events   map[string][]Event // algorithm → arrival-order events; guarded by mu
	start    time.Time          // immutable after NewBuilder
	clock    func() time.Time   // immutable after NewBuilder
	finished bool               // guarded by mu
}

// NewBuilder starts a trace record. clock supplies the timing fields; nil
// means the wall clock (injected so trace timing stays testable and the
// package honors the clocked-zone lint contract).
func NewBuilder(id, name string, clock func() time.Time) *Builder {
	if clock == nil {
		clock = time.Now
	}
	return &Builder{
		id:     id,
		name:   name,
		events: make(map[string][]Event),
		start:  clock(),
		clock:  clock,
	}
}

// SetAttr annotates the trace. Setting the same key again overwrites.
func (b *Builder) SetAttr(key, value string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.attrs {
		if b.attrs[i].Key == key {
			b.attrs[i].Value = value
			return
		}
	}
	b.attrs = append(b.attrs, Attr{Key: key, Value: value})
}

// Stage records one completed pipeline stage. Stages keep recording order.
func (b *Builder) Stage(name string, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stages = append(b.stages, Stage{Name: name, DurationNS: d.Nanoseconds()})
}

// Hook returns a runctx.Hook that records every iteration into the trace.
// The hook is internally serialized, so it is safe under parallel fan-outs
// even without runctx.WithSerializedHook.
func (b *Builder) Hook() runctx.Hook {
	return func(it runctx.Iteration) {
		e := Event{
			N:             it.N,
			Chain:         it.Chain,
			LogLikelihood: it.LogLikelihood,
			HasLL:         it.HasLL,
			Value:         it.Value,
			HasValue:      it.HasValue,
			Samples:       it.Samples,
			Done:          it.Done,
			Stopped:       it.Stopped,
			ElapsedNS:     it.Elapsed.Nanoseconds(),
		}
		b.mu.Lock()
		if !b.finished {
			b.events[it.Algorithm] = append(b.events[it.Algorithm], e)
		}
		b.mu.Unlock()
	}
}

// Finish seals the builder and returns the canonicalized trace: attrs
// sorted by key, runs sorted by algorithm, each run's events sorted by
// their deterministic fields, diagnostics computed. status should be one of
// the Status* constants (StatusOf maps a run error to one); errMsg is
// recorded for StatusError. Events arriving after Finish are dropped.
func (b *Builder) Finish(status, errMsg string) *Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.finished = true
	t := &Trace{
		ID:          b.id,
		Name:        b.name,
		Status:      status,
		Error:       errMsg,
		Attrs:       append([]Attr(nil), b.attrs...),
		Stages:      append([]Stage(nil), b.stages...),
		StartUnixNS: b.start.UnixNano(),
		DurationNS:  b.clock().Sub(b.start).Nanoseconds(),
	}
	sort.SliceStable(t.Attrs, func(i, j int) bool { return t.Attrs[i].Key < t.Attrs[j].Key })
	for _, alg := range mapsort.Keys(b.events) {
		run := &Run{Algorithm: alg, Events: append([]Event(nil), b.events[alg]...)}
		canonicalizeEvents(run.Events)
		t.Runs = append(t.Runs, run)
	}
	t.Diagnostics = Diagnose(t)
	return t
}

// canonicalizeEvents sorts events by a total order over their deterministic
// fields. Parallel chains deliver records in scheduler order; the sorted
// sequence is the same at any Workers value because the *set* of events is
// (the repository-wide parallel-determinism contract). Ties across every
// deterministic field can only differ in ElapsedNS, which the determinism
// contract excludes, so stable order among them is irrelevant.
func canonicalizeEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.Chain != b.Chain {
			return a.Chain < b.Chain
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.Samples != b.Samples {
			return a.Samples < b.Samples
		}
		if a.Done != b.Done {
			return !a.Done
		}
		if a.Stopped != b.Stopped {
			return a.Stopped < b.Stopped
		}
		if a.LogLikelihood != b.LogLikelihood {
			return a.LogLikelihood < b.LogLikelihood
		}
		return a.Value < b.Value
	})
}
