package trace

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"depsense/internal/runctx"
)

// testClock returns a deterministic clock advancing one millisecond per call.
func testClock() func() time.Time {
	t0 := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestStatusOf(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dctx, dcancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer dcancel()
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, StatusOK},
		{ctx.Err(), StatusCancelled},
		{dctx.Err(), StatusDeadline},
		{context.Canceled, StatusCancelled},
		{bytesErr{}, StatusError},
	} {
		if got := StatusOf(tc.err); got != tc.want {
			t.Errorf("StatusOf(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

type bytesErr struct{}

func (bytesErr) Error() string { return "boom" }

// TestBuilderCanonicalization feeds one builder the same event set in two
// different arrival orders (as a parallel fan-out would) and checks both
// finished traces agree event for event, with runs sorted by algorithm,
// events sorted by (chain, n), and attrs sorted by key.
func TestBuilderCanonicalization(t *testing.T) {
	fire := func(order []runctx.Iteration) *Trace {
		b := NewBuilder("t1", "test", testClock())
		b.SetAttr("workers", "4")
		b.SetAttr("algorithm", "EM-Ext")
		b.SetAttr("workers", "1") // overwrite wins
		hook := b.Hook()
		for _, it := range order {
			hook(it)
		}
		b.Stage("load", time.Millisecond)
		b.Stage("estimate", 2*time.Millisecond)
		return b.Finish(StatusOK, "")
	}
	events := []runctx.Iteration{
		{Algorithm: "EM-Ext", N: 1, Chain: 1, LogLikelihood: -9, HasLL: true},
		{Algorithm: "EM-Ext", N: 2, Chain: 1, LogLikelihood: -8, HasLL: true, Done: true, Stopped: runctx.StopConverged},
		{Algorithm: "EM-Ext", N: 1, Chain: 0, LogLikelihood: -10, HasLL: true},
		{Algorithm: "EM-Ext", N: 2, Chain: 0, LogLikelihood: -7, HasLL: true, Done: true, Stopped: runctx.StopConverged},
		{Algorithm: "gibbs-bound", N: 1, Samples: 500, Value: 0.01, HasValue: true},
	}
	reversed := make([]runctx.Iteration, len(events))
	for i, it := range events {
		reversed[len(events)-1-i] = it
	}
	a, b := fire(events), fire(reversed)

	if len(a.Runs) != 2 || a.Runs[0].Algorithm != "EM-Ext" || a.Runs[1].Algorithm != "gibbs-bound" {
		t.Fatalf("runs not sorted by algorithm: %+v", a.Runs)
	}
	wantAttrs := []Attr{{Key: "algorithm", Value: "EM-Ext"}, {Key: "workers", Value: "1"}}
	if !reflect.DeepEqual(a.Attrs, wantAttrs) {
		t.Fatalf("attrs = %+v, want %+v", a.Attrs, wantAttrs)
	}
	em := a.Runs[0].Events
	for i := 1; i < len(em); i++ {
		if em[i].Chain < em[i-1].Chain ||
			(em[i].Chain == em[i-1].Chain && em[i].N < em[i-1].N) {
			t.Fatalf("events not in (chain, n) order: %+v", em)
		}
	}
	la, err := Marshal(a.StripTimings())
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Marshal(b.StripTimings())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(la, lb) {
		t.Fatalf("arrival order leaked into the canonical trace:\n%s\n%s", la, lb)
	}
	if got := a.Runs[0].Iterations(); got != 2 {
		t.Errorf("Iterations() = %d, want 2", got)
	}
	if got := a.Runs[0].Chains(); got != 2 {
		t.Errorf("Chains() = %d, want 2", got)
	}
	if got := a.Runs[0].Stopped(); got != runctx.StopConverged {
		t.Errorf("Stopped() = %q, want converged", got)
	}
	if got := a.Events(); got != 5 {
		t.Errorf("Events() = %d, want 5", got)
	}
	s := a.Summary()
	if s.ID != "t1" || s.Runs != 2 || s.Events != 5 || s.Status != StatusOK {
		t.Errorf("Summary() = %+v", s)
	}
}

// TestBuilderDropsEventsAfterFinish seals the builder and checks a late
// firing (a straggler goroutine) is dropped rather than racing the trace.
func TestBuilderDropsEventsAfterFinish(t *testing.T) {
	b := NewBuilder("t2", "test", testClock())
	hook := b.Hook()
	hook(runctx.Iteration{Algorithm: "EM-Ext", N: 1, HasLL: true, LogLikelihood: -1})
	tr := b.Finish(StatusOK, "")
	hook(runctx.Iteration{Algorithm: "EM-Ext", N: 2, HasLL: true, LogLikelihood: 0})
	if got := tr.Events(); got != 1 {
		t.Fatalf("late event recorded: %d events, want 1", got)
	}
}

func TestStripTimings(t *testing.T) {
	b := NewBuilder("t3", "test", testClock())
	hook := b.Hook()
	hook(runctx.Iteration{Algorithm: "EM-Ext", N: 1, HasLL: true, LogLikelihood: -2, Elapsed: 5 * time.Millisecond})
	b.Stage("estimate", 7*time.Millisecond)
	tr := b.Finish(StatusOK, "")

	if tr.StartUnixNS == 0 || tr.DurationNS == 0 {
		t.Fatalf("expected live timings, got start=%d dur=%d", tr.StartUnixNS, tr.DurationNS)
	}
	st := tr.StripTimings()
	if st.StartUnixNS != 0 || st.DurationNS != 0 ||
		st.Stages[0].DurationNS != 0 || st.Runs[0].Events[0].ElapsedNS != 0 {
		t.Fatalf("timings not stripped: %+v", st)
	}
	// The original must be untouched (StripTimings is a deep copy).
	if tr.Stages[0].DurationNS != 7e6 || tr.Runs[0].Events[0].ElapsedNS != 5e6 {
		t.Fatalf("StripTimings mutated the original: %+v", tr)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	mk := func(id, status string) *Trace {
		b := NewBuilder(id, "test", testClock())
		b.SetAttr("k", "v")
		hook := b.Hook()
		hook(runctx.Iteration{Algorithm: "EM-Ext", N: 1, HasLL: true, LogLikelihood: -3})
		hook(runctx.Iteration{Algorithm: "EM-Ext", N: 2, HasLL: true, LogLikelihood: -1,
			Done: true, Stopped: runctx.StopConverged})
		b.Stage("estimate", time.Millisecond)
		msg := ""
		if status == StatusError {
			msg = "boom"
		}
		return b.Finish(status, msg)
	}
	in := []*Trace{mk("a", StatusOK), mk("b", StatusError), mk("c", StatusCancelled)}

	var buf bytes.Buffer
	if err := Write(&buf, in...); err != nil {
		t.Fatal(err)
	}
	// Blank lines are tolerated.
	buf.WriteString("\n")
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip returned %d traces, want %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(in[i], out[i]) {
			t.Errorf("trace %d changed across the round trip:\nin:  %+v\nout: %+v", i, in[i], out[i])
		}
	}

	// A corrupt line fails loudly with its line number.
	if _, err := Read(bytes.NewReader([]byte("{\"id\":\"ok\"}\n{nope\n"))); err == nil {
		t.Fatal("corrupt line silently accepted")
	}
}

// TestMarshalDeterministic encodes the same logical trace built twice and
// checks byte equality after StripTimings — the property the Workers
// determinism diffs rely on.
func TestMarshalDeterministic(t *testing.T) {
	mk := func() []byte {
		b := NewBuilder("d", "test", testClock())
		hook := b.Hook()
		for i := 1; i <= 3; i++ {
			hook(runctx.Iteration{Algorithm: "gibbs-bound", N: i, Chain: i % 2,
				Samples: i * 100, Value: float64(i) * 0.25, HasValue: true})
		}
		line, err := Marshal(b.Finish(StatusOK, "").StripTimings())
		if err != nil {
			t.Fatal(err)
		}
		return line
	}
	if a, b := mk(), mk(); !bytes.Equal(a, b) {
		t.Fatalf("same logical trace, different bytes:\n%s\n%s", a, b)
	}
}
