package trace

import (
	"sort"
	"sync"
)

// Default flight-recorder capacities.
const (
	// DefaultCompleted is the default retention for healthy run traces.
	DefaultCompleted = 64
	// DefaultFailed is the default retention for failed/cancelled run
	// traces, kept in their own ring so a burst of healthy traffic can
	// never evict the error the operator is hunting.
	DefaultFailed = 16
)

// FlightRecorder retains the last K completed and last K' failed/cancelled
// run traces in fixed-capacity ring buffers — bounded memory no matter how
// long the server runs. All methods are safe for concurrent use; Get and
// Index return the stored trace pointers, which are immutable after Finish.
type FlightRecorder struct {
	mu      sync.Mutex
	ok      ring              // guarded by mu
	bad     ring              // guarded by mu
	byID    map[string]*entry // guarded by mu
	seq     uint64            // insertion counter; Index orders newest-first by it; guarded by mu
	added   uint64            // guarded by mu
	evicted uint64            // guarded by mu
}

type entry struct {
	t   *Trace
	seq uint64
}

// ring is a fixed-capacity FIFO of trace entries.
type ring struct {
	buf  []*entry
	head int // next slot to overwrite
	n    int // live entries
}

func (r *ring) push(e *entry) (evicted *entry) {
	if len(r.buf) == 0 {
		return nil
	}
	if r.n == len(r.buf) {
		evicted = r.buf[r.head]
	} else {
		r.n++
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % len(r.buf)
	return evicted
}

func (r *ring) each(f func(*entry)) {
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		f(r.buf[(start+i)%len(r.buf)])
	}
}

// NewFlightRecorder builds a recorder retaining up to completed healthy
// traces and failed error traces; zero or negative selects the defaults.
func NewFlightRecorder(completed, failed int) *FlightRecorder {
	if completed <= 0 {
		completed = DefaultCompleted
	}
	if failed <= 0 {
		failed = DefaultFailed
	}
	return &FlightRecorder{
		ok:   ring{buf: make([]*entry, completed)},
		bad:  ring{buf: make([]*entry, failed)},
		byID: make(map[string]*entry),
	}
}

// Record stores a finished trace, evicting the oldest trace of the same
// health class (completed vs failed) once that ring is full. Recording a
// second trace under an existing ID replaces the ID's index entry; the
// older trace ages out of its ring normally.
func (f *FlightRecorder) Record(t *Trace) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	f.added++
	e := &entry{t: t, seq: f.seq}
	r := &f.ok
	if t.Failed() {
		r = &f.bad
	}
	if old := r.push(e); old != nil {
		f.evicted++
		// Drop the evicted trace from the index unless a newer trace
		// already claimed its ID.
		if cur, ok := f.byID[old.t.ID]; ok && cur == old {
			delete(f.byID, old.t.ID)
		}
	}
	f.byID[t.ID] = e
}

// Get returns the retained trace with the given ID.
func (f *FlightRecorder) Get(id string) (*Trace, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.byID[id]
	if !ok {
		return nil, false
	}
	return e.t, true
}

// Index lists the retained traces, newest first (by insertion order, which
// is deterministic given the caller's recording order), failed and
// completed interleaved.
func (f *FlightRecorder) Index() []Summary {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries := make([]*entry, 0, f.ok.n+f.bad.n)
	f.ok.each(func(e *entry) { entries = append(entries, e) })
	f.bad.each(func(e *entry) { entries = append(entries, e) })
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq > entries[j].seq })
	out := make([]Summary, len(entries))
	for i, e := range entries {
		out[i] = e.t.Summary()
	}
	return out
}

// Len returns the number of retained traces.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ok.n + f.bad.n
}

// Stats reports lifetime counters: traces recorded and traces evicted.
func (f *FlightRecorder) Stats() (added, evicted uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.added, f.evicted
}
