package trace

import (
	"fmt"
	"sync"
	"testing"
)

func mkTrace(id, status string) *Trace {
	b := NewBuilder(id, "test", testClock())
	hook := b.Hook()
	hook(iter("EM-Ext", 1, -5))
	return b.Finish(status, "")
}

func TestFlightRecorderCapacityBounded(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	for i := 0; i < 100; i++ {
		fr.Record(mkTrace(fmt.Sprintf("ok-%d", i), StatusOK))
	}
	for i := 0; i < 50; i++ {
		fr.Record(mkTrace(fmt.Sprintf("bad-%d", i), StatusError))
	}
	if got := fr.Len(); got != 6 {
		t.Fatalf("Len() = %d, want 4+2", got)
	}
	added, evicted := fr.Stats()
	if added != 150 || evicted != 144 {
		t.Fatalf("Stats() = (%d, %d), want (150, 144)", added, evicted)
	}
	// Only the newest of each class survive; the index holds exactly the
	// retained IDs (evicted traces must not leak index entries — that is the
	// memory bound).
	for _, id := range []string{"ok-96", "ok-99", "bad-48", "bad-49"} {
		if _, ok := fr.Get(id); !ok {
			t.Errorf("retained trace %q not found", id)
		}
	}
	for _, id := range []string{"ok-0", "ok-95", "bad-0", "bad-47"} {
		if _, ok := fr.Get(id); ok {
			t.Errorf("evicted trace %q still indexed", id)
		}
	}
}

// TestFlightRecorderFailedRetention is the design property of the split
// rings: a burst of healthy traffic can never evict a failed trace.
func TestFlightRecorderFailedRetention(t *testing.T) {
	fr := NewFlightRecorder(2, 2)
	fr.Record(mkTrace("crash", StatusError))
	for i := 0; i < 1000; i++ {
		fr.Record(mkTrace(fmt.Sprintf("ok-%d", i), StatusOK))
	}
	if _, ok := fr.Get("crash"); !ok {
		t.Fatal("healthy traffic evicted the failed trace")
	}
	// Cancelled and deadline traces count as failed too.
	fr.Record(mkTrace("slow", StatusDeadline))
	for i := 0; i < 100; i++ {
		fr.Record(mkTrace(fmt.Sprintf("ok2-%d", i), StatusOK))
	}
	if _, ok := fr.Get("slow"); !ok {
		t.Fatal("healthy traffic evicted the deadline trace")
	}
}

func TestFlightRecorderIndexNewestFirst(t *testing.T) {
	fr := NewFlightRecorder(8, 8)
	fr.Record(mkTrace("a", StatusOK))
	fr.Record(mkTrace("b", StatusError))
	fr.Record(mkTrace("c", StatusOK))
	idx := fr.Index()
	if len(idx) != 3 || idx[0].ID != "c" || idx[1].ID != "b" || idx[2].ID != "a" {
		t.Fatalf("Index() = %+v, want newest-first c,b,a", idx)
	}
	if idx[1].Status != StatusError {
		t.Fatalf("summary status = %q, want error", idx[1].Status)
	}
}

func TestFlightRecorderDuplicateID(t *testing.T) {
	fr := NewFlightRecorder(2, 2)
	fr.Record(mkTrace("dup", StatusOK))
	second := mkTrace("dup", StatusOK)
	fr.Record(second)
	got, ok := fr.Get("dup")
	if !ok || got != second {
		t.Fatal("Get should return the newest trace under a duplicated ID")
	}
	// Aging the first "dup" out of the ring must not delete the newer entry.
	fr.Record(mkTrace("x", StatusOK)) // evicts first "dup"
	if _, ok := fr.Get("dup"); !ok {
		t.Fatal("evicting the stale duplicate removed the live index entry")
	}
}

func TestFlightRecorderZeroDefaults(t *testing.T) {
	fr := NewFlightRecorder(0, -1)
	if len(fr.ok.buf) != DefaultCompleted || len(fr.bad.buf) != DefaultFailed {
		t.Fatalf("defaults not applied: %d/%d", len(fr.ok.buf), len(fr.bad.buf))
	}
}

// TestFlightRecorderConcurrent hammers Record from many goroutines while
// readers call Get, Index, Len, and Stats — run under -race this is the
// regression test for the /debug/runs read path racing live traffic.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(8, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				status := StatusOK
				if i%5 == 0 {
					status = StatusCancelled
				}
				fr.Record(mkTrace(fmt.Sprintf("w%d-%d", w, i), status))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, s := range fr.Index() {
					if tr, ok := fr.Get(s.ID); ok && tr.ID != s.ID {
						t.Errorf("Get(%q) returned trace %q", s.ID, tr.ID)
					}
				}
				fr.Len()
				fr.Stats()
			}
		}(r)
	}
	wg.Wait()
	if got := fr.Len(); got > 12 {
		t.Fatalf("Len() = %d exceeds capacity 8+4", got)
	}
}
