package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Write encodes traces as JSONL: one compact JSON object per line, struct
// field order fixed by the type definitions, attrs and runs canonicalized
// by Finish — the same trace always encodes to the same bytes, which is
// what lets tests diff spill files across Workers values.
func Write(w io.Writer, traces ...*Trace) error {
	for _, t := range traces {
		line, err := Marshal(t)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// Marshal encodes one trace as a single JSON line (no trailing newline).
func Marshal(t *Trace) ([]byte, error) {
	line, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("trace: encode %q: %w", t.ID, err)
	}
	return line, nil
}

// WriteFile writes traces as a JSONL file at path, replacing any existing
// file — the one-shot variant the CLIs use (the serving layer appends to
// its spill instead).
func WriteFile(path string, traces ...*Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, traces...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a JSONL trace file.
func ReadFile(path string) ([]*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read decodes a JSONL stream of traces. Blank lines are skipped; a
// malformed line fails the whole read with its line number, since a spill
// file with a corrupt record should be noticed, not silently truncated.
func Read(r io.Reader) ([]*Trace, error) {
	var out []*Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		t := &Trace{}
		if err := json.Unmarshal(line, t); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}

// maxLineBytes bounds a single JSONL line (64 MiB): a trace holds at most a
// few thousand iteration events, far below this, so hitting the limit
// indicates a corrupt file rather than a big run.
const maxLineBytes = 64 << 20
