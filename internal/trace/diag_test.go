package trace

import (
	"math"
	"testing"

	"depsense/internal/runctx"
)

// iter builds an EM-style iteration record carrying a log-likelihood.
func iter(alg string, n int, ll float64) runctx.Iteration {
	return runctx.Iteration{Algorithm: alg, N: n, LogLikelihood: ll, HasLL: true}
}

// chainIter builds a Gibbs-style checkpoint carrying a Value on a chain.
func chainIter(alg string, chain, n int, v float64) runctx.Iteration {
	return runctx.Iteration{Algorithm: alg, N: n, Chain: chain, Value: v, HasValue: true}
}

func finishWith(t *testing.T, its ...runctx.Iteration) *Trace {
	t.Helper()
	b := NewBuilder("diag", "test", testClock())
	hook := b.Hook()
	for _, it := range its {
		hook(it)
	}
	return b.Finish(StatusOK, "")
}

func TestSplitRHatDegenerateInputs(t *testing.T) {
	if _, ok := SplitRHat(nil); ok {
		t.Error("nil chains accepted")
	}
	if _, ok := SplitRHat([][]float64{{1, 2, 3, 4}}); ok {
		t.Error("single chain accepted")
	}
	// Common length 3 → half 1 < 2: not computable.
	if _, ok := SplitRHat([][]float64{{1, 2, 3, 4}, {1, 2, 3}}); ok {
		t.Error("half-chain of one point accepted")
	}
	// Identical constant chains: zero variance everywhere → perfectly mixed.
	if r, ok := SplitRHat([][]float64{{2, 2, 2, 2}, {2, 2, 2, 2}}); !ok || r != 1 {
		t.Errorf("constant identical chains: rhat=%v ok=%v, want 1 true", r, ok)
	}
	// Frozen chains at different values: infinitely bad mixing, capped.
	if r, ok := SplitRHat([][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}}); !ok || r != 1e6 {
		t.Errorf("frozen distinct chains: rhat=%v ok=%v, want 1e6 true", r, ok)
	}
}

func TestSplitRHatMixedVsNot(t *testing.T) {
	// Two chains sampling the same stationary distribution: interleaved
	// deterministic pseudo-noise around a common mean.
	n := 64
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = 0.5 + 0.01*math.Sin(float64(i)*1.7)
		b[i] = 0.5 + 0.01*math.Sin(float64(i)*1.7+2.1)
	}
	r, ok := SplitRHat([][]float64{a, b})
	if !ok || r > RHatWarnThreshold {
		t.Fatalf("well-mixed chains: rhat=%v ok=%v, want <= %v", r, ok, RHatWarnThreshold)
	}

	// Same noise, but the chains orbit different means: between-chain
	// variance dwarfs within-chain variance.
	for i := 0; i < n; i++ {
		b[i] += 1.0
	}
	r, ok = SplitRHat([][]float64{a, b})
	if !ok || r <= RHatWarnThreshold {
		t.Fatalf("non-mixing chains: rhat=%v ok=%v, want > %v", r, ok, RHatWarnThreshold)
	}

	// A drifting chain disagrees with itself — the failure split-chain R-hat
	// exists to catch: both chains trend upward together, plain between-chain
	// comparison would pass, the split must not.
	for i := 0; i < n; i++ {
		a[i] = float64(i) * 0.1
		b[i] = float64(i)*0.1 + 0.001*math.Sin(float64(i))
	}
	r, ok = SplitRHat([][]float64{a, b})
	if !ok || r <= RHatWarnThreshold {
		t.Fatalf("jointly drifting chains: rhat=%v, want > %v", r, RHatWarnThreshold)
	}
}

func TestSplitRHatTruncatesToCommonTail(t *testing.T) {
	// The longer chain's early burn-in garbage must be ignored: only the
	// trailing common length counts.
	long := append(make([]float64, 0, 40), 1e9, -1e9, 1e9, -1e9)
	short := make([]float64, 0, 36)
	for i := 0; i < 36; i++ {
		long = append(long, 0.5)
		short = append(short, 0.5)
	}
	r, ok := SplitRHat([][]float64{long, short})
	if !ok || r != 1 {
		t.Fatalf("tail truncation: rhat=%v ok=%v, want 1 true", r, ok)
	}
}

func TestDiagnoseMonotoneAndPlateau(t *testing.T) {
	// A textbook EM trajectory: fast early gains, then a long flat tail.
	its := []runctx.Iteration{}
	ll := []float64{-100, -50, -20, -10, -9.999, -9.9985, -9.998}
	for i, v := range ll {
		its = append(its, iter("EM-Ext", i+1, v))
	}
	tr := finishWith(t, its...)
	if tr.Diagnostics == nil || len(tr.Diagnostics.Runs) != 1 {
		t.Fatalf("diagnostics missing: %+v", tr.Diagnostics)
	}
	d := tr.Diagnostics.Runs[0]
	if !d.HasLL || !d.Monotone || d.LLDecreases != 0 {
		t.Fatalf("monotone trajectory misdiagnosed: %+v", d)
	}
	if d.LLFirst != -100 || d.LLLast != -9.998 {
		t.Fatalf("endpoints wrong: %+v", d)
	}
	// Total improvement 90.002; every step from index 4 on improves by less
	// than 0.09: plateau onset at 1-based iteration 4.
	if d.PlateauAt != 4 {
		t.Fatalf("PlateauAt = %d, want 4", d.PlateauAt)
	}
}

func TestDiagnoseLLDecrease(t *testing.T) {
	tr := finishWith(t,
		iter("EM-Ext", 1, -10),
		iter("EM-Ext", 2, -8),
		iter("EM-Ext", 3, -8.5), // lost 0.5 — EM must never do this
		iter("EM-Ext", 4, -7),
	)
	d := tr.Diagnostics.Runs[0]
	if d.Monotone || d.LLDecreases != 1 || d.MaxDecrease != 0.5 {
		t.Fatalf("decrease not flagged: %+v", d)
	}
	// A sub-tolerance wobble is not a decrease.
	tr = finishWith(t,
		iter("EM-Ext", 1, -10),
		iter("EM-Ext", 2, -10+1e-12),
		iter("EM-Ext", 3, -10),
	)
	if d := tr.Diagnostics.Runs[0]; !d.Monotone {
		t.Fatalf("floating-point jitter flagged as a decrease: %+v", d)
	}
}

func TestDiagnoseRestarts(t *testing.T) {
	mk := func(chain int, final float64) []runctx.Iteration {
		return []runctx.Iteration{
			{Algorithm: "EM-Ext", N: 1, Chain: chain, LogLikelihood: final - 1, HasLL: true},
			{Algorithm: "EM-Ext", N: 2, Chain: chain, LogLikelihood: final, HasLL: true,
				Done: true, Stopped: runctx.StopConverged},
		}
	}
	var its []runctx.Iteration
	its = append(its, mk(0, -20)...)
	its = append(its, mk(1, -12)...) // best restart
	its = append(its, mk(2, -30)...) // worst restart
	tr := finishWith(t, its...)
	d := tr.Diagnostics.Runs[0]
	if !d.HasRestarts || d.RestartBestChain != 1 {
		t.Fatalf("best restart misidentified: %+v", d)
	}
	if d.RestartBestLL != -12 || d.RestartWorstLL != -30 || d.RestartSpread != 18 {
		t.Fatalf("restart comparison wrong: %+v", d)
	}
	if d.Chains != 3 {
		t.Fatalf("Chains = %d, want 3", d.Chains)
	}

	// A single-chain run produces no restart comparison.
	tr = finishWith(t, iter("EM-Ext", 1, -5), iter("EM-Ext", 2, -4))
	if tr.Diagnostics.Runs[0].HasRestarts {
		t.Fatal("single chain produced a restart comparison")
	}
}

func TestDiagnoseRHatFromChainValues(t *testing.T) {
	var its []runctx.Iteration
	for c := 0; c < 2; c++ {
		for n := 1; n <= 8; n++ {
			v := 0.3 + 0.001*float64(n%3)
			if c == 1 {
				v += 0.5 // chains frozen apart: not mixed
			}
			its = append(its, chainIter("gibbs-bound", c, n, v))
		}
	}
	tr := finishWith(t, its...)
	d := tr.Diagnostics.Runs[0]
	if !d.HasRHat || d.Mixed || d.RHat <= RHatWarnThreshold {
		t.Fatalf("non-mixing chains not flagged: %+v", d)
	}

	// Without Value-carrying events there is no R-hat.
	tr = finishWith(t, iter("EM-Ext", 1, -5), iter("EM-Ext", 2, -4))
	if tr.Diagnostics.Runs[0].HasRHat {
		t.Fatal("R-hat computed without Value trajectories")
	}
}

// TestDiagnoseRHatInsufficient: a Value-reporting run that cannot support
// split R-hat must say WHY instead of silently omitting the statistic — a
// single-chain Gibbs run used to look identical to "nothing to diagnose",
// and readers took the absent R-hat for a clean bill of mixing health.
func TestDiagnoseRHatInsufficient(t *testing.T) {
	// One chain, plenty of checkpoints: insufficient chains.
	var its []runctx.Iteration
	for n := 1; n <= 8; n++ {
		its = append(its, chainIter("gibbs-bound", 0, n, 0.3+0.01*float64(n%3)))
	}
	d := finishWith(t, its...).Diagnostics.Runs[0]
	if d.HasRHat {
		t.Fatalf("single chain produced an R-hat: %+v", d)
	}
	if d.RHatStatus != RHatInsufficientChains {
		t.Fatalf("single chain RHatStatus = %q, want %q", d.RHatStatus, RHatInsufficientChains)
	}

	// Two chains, three checkpoints each: halves of one point, too short.
	its = nil
	for c := 0; c < 2; c++ {
		for n := 1; n <= 3; n++ {
			its = append(its, chainIter("gibbs-bound", c, n, 0.3+0.1*float64(c)))
		}
	}
	d = finishWith(t, its...).Diagnostics.Runs[0]
	if d.HasRHat {
		t.Fatalf("three-checkpoint chains produced an R-hat: %+v", d)
	}
	if d.RHatStatus != RHatInsufficientCheckpoints {
		t.Fatalf("short chains RHatStatus = %q, want %q", d.RHatStatus, RHatInsufficientCheckpoints)
	}

	// No Value trajectories at all (EM runs): no status — nothing was
	// expected to produce an R-hat.
	d = finishWith(t, iter("EM-Ext", 1, -5), iter("EM-Ext", 2, -4)).Diagnostics.Runs[0]
	if d.HasRHat || d.RHatStatus != "" {
		t.Fatalf("LL-only run got RHatStatus %q, want empty", d.RHatStatus)
	}

	// A healthy multi-chain run carries an R-hat and no status.
	its = nil
	for c := 0; c < 2; c++ {
		for n := 1; n <= 8; n++ {
			its = append(its, chainIter("gibbs-bound", c, n, 0.3+0.001*float64((n+c)%3)))
		}
	}
	d = finishWith(t, its...).Diagnostics.Runs[0]
	if !d.HasRHat || d.RHatStatus != "" {
		t.Fatalf("healthy run: HasRHat=%v RHatStatus=%q, want true and empty", d.HasRHat, d.RHatStatus)
	}
}
