package trace_test

import (
	"bytes"
	"context"
	"testing"

	"depsense/internal/bound"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
	"depsense/internal/trace"
)

// column builds a two-component bound column with uniform per-source
// on-probabilities.
func column(n int, p1, p0, z float64) bound.Column {
	c := bound.Column{P1: make([]float64, n), P0: make([]float64, n), Z: z}
	for i := 0; i < n; i++ {
		c.P1[i] = p1
		c.P0[i] = p0
	}
	return c
}

// runTraced runs the Gibbs bound approximation under a trace builder and
// returns the finished trace.
func runTraced(t *testing.T, c bound.Column, opts bound.ApproxOptions, seed int64) *Trace {
	t.Helper()
	b := trace.NewBuilder("gibbs", "test", nil)
	ctx := runctx.WithHook(context.Background(), b.Hook())
	if _, err := bound.ApproxContext(ctx, c, opts, randutil.New(seed)); err != nil {
		t.Fatal(err)
	}
	return b.Finish(trace.StatusOK, "")
}

type Trace = trace.Trace

// TestGibbsRHatSeparatesMixing is the acceptance fixture for the R-hat
// diagnostic, fed by real Gibbs chains end to end.
//
// Well-mixed: the production multi-chain path (Chains: 2) on one column —
// both chains sample the same distribution and their per-checkpoint batch
// means agree, so R-hat stays at the threshold or under.
//
// Deliberately non-mixing: two real single-chain runs over *different*
// columns recorded as chain 0 and chain 1 of one trace (a relabelling hook
// stamps the chain index). Chains sampling different distributions is
// exactly the pathology R-hat exists to flag — their batch means sit at
// different levels, and the split statistic must exceed the warning
// threshold.
func TestGibbsRHatSeparatesMixing(t *testing.T) {
	opts := bound.ApproxOptions{
		BurnIn:     20,
		MaxSweeps:  8000, // 4000 per chain
		CheckEvery: 100,
		Tol:        1e-12, // never converge early: keep full trajectories
		Chains:     2,
	}

	mixed := runTraced(t, column(4, 0.6, 0.45, 0.5), opts, 3)
	d := diagOf(t, mixed, "gibbs-bound")
	if !d.HasRHat {
		t.Fatalf("no R-hat computed for the well-mixed run: %+v", d)
	}
	if d.RHat > trace.RHatWarnThreshold || !d.Mixed {
		t.Fatalf("well-mixed fixture flagged: rhat=%v mixed=%v", d.RHat, d.Mixed)
	}

	b := trace.NewBuilder("stuck", "test", nil)
	single := opts
	single.Chains = 1
	single.MaxSweeps = 4000
	for chain, c := range []bound.Column{
		column(4, 0.6, 0.45, 0.5),  // ambiguous overlap: high error mass
		column(10, 0.85, 0.3, 0.5), // well-separated: low error mass
	} {
		hook := b.Hook()
		chain := chain
		ctx := runctx.WithHook(context.Background(), func(it runctx.Iteration) {
			it.Chain = chain
			hook(it)
		})
		if _, err := bound.ApproxContext(ctx, c, single, randutil.New(3)); err != nil {
			t.Fatal(err)
		}
	}
	d = diagOf(t, b.Finish(trace.StatusOK, ""), "gibbs-bound")
	if !d.HasRHat || d.Chains != 2 {
		t.Fatalf("no two-chain R-hat computed: %+v", d)
	}
	if d.RHat <= trace.RHatWarnThreshold || d.Mixed {
		t.Fatalf("non-mixing fixture not flagged: rhat=%v mixed=%v", d.RHat, d.Mixed)
	}
}

func diagOf(t *testing.T, tr *Trace, alg string) trace.RunDiag {
	t.Helper()
	if tr.Diagnostics == nil {
		t.Fatal("trace has no diagnostics")
	}
	for _, d := range tr.Diagnostics.Runs {
		if d.Algorithm == alg {
			return d
		}
	}
	t.Fatalf("no diagnostics for %q: %+v", alg, tr.Diagnostics.Runs)
	return trace.RunDiag{}
}

// TestTraceDeterministicAcrossWorkers is the trace-layer mirror of the
// metrics determinism test: a multi-chain run recorded at Workers=1 and
// Workers=4 must serialize to byte-identical JSONL once timing fields are
// stripped — scheduler interleaving must never leak into the record.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	c := column(10, 0.8, 0.25, 0.4)
	marshal := func(workers int) []byte {
		opts := bound.ApproxOptions{
			BurnIn:     50,
			MaxSweeps:  6000,
			CheckEvery: 100,
			Tol:        1e-12,
			Chains:     4,
			Workers:    workers,
		}
		tr := runTraced(t, c, opts, 11)
		line, err := trace.Marshal(tr.StripTimings())
		if err != nil {
			t.Fatal(err)
		}
		return line
	}
	serial, parallel := marshal(1), marshal(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("Workers leaked into the trace:\nworkers=1: %s\nworkers=4: %s", serial, parallel)
	}
}
