package trace

import (
	"math"

	"depsense/internal/mapsort"
)

// Diagnostic thresholds.
const (
	// RHatWarnThreshold is the classic potential-scale-reduction warning
	// level: split-chain R-hat above 1.1 means the chains disagree more
	// between themselves than within themselves — the Gibbs estimate has
	// not mixed and the bound it feeds should not be trusted yet.
	RHatWarnThreshold = 1.1
	// llDecreaseTol absorbs floating-point jitter when checking EM
	// log-likelihood monotonicity: a step counts as a decrease only when it
	// loses more than this much absolute log-likelihood.
	llDecreaseTol = 1e-9
	// plateauRelTol declares a plateau when an iteration improves the
	// log-likelihood by less than this fraction of the trajectory's total
	// improvement.
	plateauRelTol = 1e-3
	// rhatMax caps the reported R-hat so degenerate trajectories (zero
	// within-chain variance with nonzero between-chain variance — frozen
	// chains at different values) stay JSON-encodable.
	rhatMax = 1e6
)

// Diagnostics is the convergence analysis attached to a finished trace.
// Every field is deterministic: it is computed from the deterministic event
// fields only.
type Diagnostics struct {
	Runs []RunDiag `json:"runs,omitempty"`
}

// RunDiag is one algorithm run's convergence verdicts.
type RunDiag struct {
	Algorithm  string `json:"algorithm"`
	Chains     int    `json:"chains"`
	Iterations int    `json:"iterations"`
	Stopped    string `json:"stopped,omitempty"`

	// Log-likelihood trajectory (EM family), present when HasLL.
	HasLL   bool    `json:"hasLL,omitempty"`
	LLFirst float64 `json:"llFirst,omitempty"`
	LLLast  float64 `json:"llLast,omitempty"`
	// LLDecreases counts iterations that LOST log-likelihood beyond
	// tolerance — EM guarantees monotone ascent, so any decrease flags a
	// numerical or modeling problem. Monotone is its negation.
	LLDecreases int     `json:"llDecreases,omitempty"`
	MaxDecrease float64 `json:"maxDecrease,omitempty"`
	Monotone    bool    `json:"monotone,omitempty"`
	// PlateauAt is the 1-based iteration from which every later step
	// improved by less than plateauRelTol of the total improvement; 0 when
	// the run never plateaued. A plateau well before the final iteration of
	// an iteration-capped run means the cap wasted work; a cap with no
	// plateau means the run genuinely needed more budget.
	PlateauAt int `json:"plateauAt,omitempty"`

	// Per-restart comparison, present when more than one chain reported a
	// log-likelihood. Spread is best minus worst final log-likelihood: a
	// large spread means restarts land in different optima and the restart
	// budget is doing real work; a near-zero spread means the landscape is
	// unimodal (or the restarts are redundant).
	RestartBestChain int     `json:"restartBestChain,omitempty"`
	RestartBestLL    float64 `json:"restartBestLL,omitempty"`
	RestartWorstLL   float64 `json:"restartWorstLL,omitempty"`
	RestartSpread    float64 `json:"restartSpread,omitempty"`
	HasRestarts      bool    `json:"hasRestarts,omitempty"`

	// Split-chain R-hat over per-chain Value trajectories (Gibbs sweep
	// checkpoints), present when HasRHat. Mixed reports R-hat at or under
	// RHatWarnThreshold.
	HasRHat bool    `json:"hasRHat,omitempty"`
	RHat    float64 `json:"rhat,omitempty"`
	Mixed   bool    `json:"mixed,omitempty"`
	// RHatStatus explains an ABSENT R-hat for runs that did report Value
	// trajectories: RHatInsufficientChains when only one chain reported
	// values (a single chain cannot disagree with itself, so "mixed" would
	// be vacuous), RHatInsufficientCheckpoints when the chains are too
	// short to split (each half-chain needs two points). Empty when HasRHat
	// is set or when the run reported no values at all (non-Gibbs runs).
	RHatStatus string `json:"rhatStatus,omitempty"`
}

// RHatStatus values: why a Value-reporting run has no R-hat.
const (
	// RHatInsufficientChains marks a single-chain Gibbs run — the
	// statistic needs at least two chains.
	RHatInsufficientChains = "insufficient-chains"
	// RHatInsufficientCheckpoints marks chains with fewer than four common
	// checkpoints — too short to split into meaningful halves.
	RHatInsufficientCheckpoints = "insufficient-checkpoints"
)

// Diagnose computes the convergence diagnostics for a finished trace. It is
// called by Builder.Finish; exposed so offline tools (sstrace) can
// re-diagnose traces loaded from JSONL.
func Diagnose(t *Trace) *Diagnostics {
	if len(t.Runs) == 0 {
		return nil
	}
	d := &Diagnostics{}
	for _, run := range t.Runs {
		d.Runs = append(d.Runs, diagnoseRun(run))
	}
	return d
}

func diagnoseRun(run *Run) RunDiag {
	rd := RunDiag{
		Algorithm:  run.Algorithm,
		Chains:     run.Chains(),
		Iterations: run.Iterations(),
		Stopped:    run.Stopped(),
	}
	diagnoseLL(run, &rd)
	diagnoseRestarts(run, &rd)
	values := ChainValues(run)
	if rhat, ok := SplitRHat(values); ok {
		rd.HasRHat = true
		rd.RHat = rhat
		rd.Mixed = rhat <= RHatWarnThreshold
	} else if len(values) > 0 {
		// The run reported Value trajectories but they cannot support the
		// statistic; say why instead of leaving a silently-absent R-hat
		// that readers mistake for "nothing to diagnose".
		if len(values) < 2 {
			rd.RHatStatus = RHatInsufficientChains
		} else {
			rd.RHatStatus = RHatInsufficientCheckpoints
		}
	}
	return rd
}

// diagnoseLL checks the log-likelihood trajectory of the run's first chain
// (chain 0 — the one a serial run would have produced) for monotone ascent
// and plateau onset.
func diagnoseLL(run *Run, rd *RunDiag) {
	var ll []float64
	for i := range run.Events {
		e := &run.Events[i]
		if e.Chain == 0 && e.HasLL {
			ll = append(ll, e.LogLikelihood)
		}
	}
	if len(ll) == 0 {
		return
	}
	rd.HasLL = true
	rd.LLFirst, rd.LLLast = ll[0], ll[len(ll)-1]
	rd.Monotone = true
	for i := 1; i < len(ll); i++ {
		if drop := ll[i-1] - ll[i]; drop > llDecreaseTol {
			rd.LLDecreases++
			rd.Monotone = false
			if drop > rd.MaxDecrease {
				rd.MaxDecrease = drop
			}
		}
	}
	// Plateau onset: the earliest iteration after which no step improves by
	// more than plateauRelTol of the trajectory's total improvement.
	total := math.Abs(rd.LLLast - rd.LLFirst)
	if total <= 0 || len(ll) < 3 {
		return
	}
	onset := len(ll)
	for i := len(ll) - 1; i >= 1; i-- {
		if math.Abs(ll[i]-ll[i-1]) > plateauRelTol*total {
			break
		}
		onset = i
	}
	if onset < len(ll) {
		rd.PlateauAt = onset
	}
}

// diagnoseRestarts compares final log-likelihoods across chains (EM restart
// pools). Only runs where at least two chains reported a log-likelihood
// produce a comparison.
func diagnoseRestarts(run *Run, rd *RunDiag) {
	final := map[int]float64{}
	for i := range run.Events {
		e := &run.Events[i]
		if e.HasLL {
			final[e.Chain] = e.LogLikelihood // events are chain/N sorted: last wins
		}
	}
	if len(final) < 2 {
		return
	}
	chains := mapsort.Keys(final)
	best, worst := chains[0], chains[0]
	for _, c := range chains[1:] {
		if final[c] > final[best] {
			best = c
		}
		if final[c] < final[worst] {
			worst = c
		}
	}
	rd.HasRestarts = true
	rd.RestartBestChain = best
	rd.RestartBestLL = final[best]
	rd.RestartWorstLL = final[worst]
	rd.RestartSpread = final[best] - final[worst]
}

// ChainValues extracts the per-chain Value trajectories of a run, in chain
// index order — the input SplitRHat wants. Chains that never reported a
// Value are omitted.
func ChainValues(run *Run) [][]float64 {
	byChain := map[int][]float64{}
	for i := range run.Events {
		e := &run.Events[i]
		if e.HasValue {
			byChain[e.Chain] = append(byChain[e.Chain], e.Value)
		}
	}
	chains := mapsort.Keys(byChain)
	out := make([][]float64, 0, len(chains))
	for _, c := range chains {
		out = append(out, byChain[c])
	}
	return out
}

// SplitRHat computes the split-chain potential scale reduction factor
// (Gelman-Rubin R-hat) over per-chain scalar trajectories: each chain is
// split in half, and R-hat compares the variance between the 2K half-chains
// against the variance within them,
//
//	R̂ = sqrt( ((n-1)/n · W + B/n) / W )
//
// with B the between-chain and W the within-chain variance over the common
// trailing length n. Values near 1 mean the chains explore the same
// distribution; above RHatWarnThreshold (1.1) they have not mixed.
// Splitting catches the failure a plain R-hat misses: chains that drift in
// the same direction but have not reached stationarity disagree with their
// own second half.
//
// ok is false when the input cannot support the statistic: fewer than two
// chains, or a common length under four (each half needs two points).
// Trailing points beyond the shortest chain are dropped so interrupted
// chains still diagnose. The result is capped at 1e6 so frozen chains stuck
// at different values (zero within-chain variance) stay representable.
func SplitRHat(chains [][]float64) (rhat float64, ok bool) {
	if len(chains) < 2 {
		return 0, false
	}
	n := len(chains[0])
	for _, c := range chains[1:] {
		if len(c) < n {
			n = len(c)
		}
	}
	half := n / 2
	if half < 2 {
		return 0, false
	}
	// Split each chain's last 2·half values into two halves.
	halves := make([][]float64, 0, 2*len(chains))
	for _, c := range chains {
		tail := c[len(c)-2*half:]
		halves = append(halves, tail[:half], tail[half:])
	}
	m := len(halves)
	means := make([]float64, m)
	grand := 0.0
	for i, h := range halves {
		s := 0.0
		for _, v := range h {
			s += v
		}
		means[i] = s / float64(half)
		grand += means[i]
	}
	grand /= float64(m)
	var between, within float64
	for i, h := range halves {
		d := means[i] - grand
		between += d * d
		var s2 float64
		for _, v := range h {
			dv := v - means[i]
			s2 += dv * dv
		}
		within += s2 / float64(half-1)
	}
	between *= float64(half) / float64(m-1)
	within /= float64(m)
	if within == 0 {
		if between == 0 {
			return 1, true // identical constant chains: perfectly mixed
		}
		return rhatMax, true // frozen chains at different values: not mixed
	}
	v := (float64(half-1)/float64(half))*within + between/float64(half)
	rhat = math.Sqrt(v / within)
	if rhat > rhatMax {
		rhat = rhatMax
	}
	return rhat, true
}
