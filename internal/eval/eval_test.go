package eval

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTableIExact(t *testing.T) {
	r, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Result.Err-r.PaperErr) > 1e-8 {
		t.Fatalf("Table I Err = %.8f, want %.8f", r.Result.Err, r.PaperErr)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.26980433") {
		t.Fatalf("render missing value:\n%s", sb.String())
	}
}

func TestFig3Quick(t *testing.T) {
	cfg := QuickConfig()
	cfg.BoundRuns = 2
	s, err := Fig3BoundVsSources(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 5 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Exact <= 0 || p.Exact >= 0.5 || p.Approx <= 0 || p.Approx >= 0.5 {
			t.Fatalf("implausible bounds at n=%g: %+v", p.X, p)
		}
	}
	// Approximation quality: the whole point of Figs. 3-5.
	if s.MaxDiff > 0.05 {
		t.Fatalf("max |exact-approx| = %v", s.MaxDiff)
	}
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig 3") {
		t.Fatal("render missing label")
	}
}

func TestFig4AndFig5Quick(t *testing.T) {
	cfg := QuickConfig()
	cfg.BoundRuns = 1
	s4, err := Fig4BoundVsTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s4.Points) != 11 {
		t.Fatalf("fig4 points = %d", len(s4.Points))
	}
	s5, err := Fig5BoundVsOdds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s5.Points) != 10 {
		t.Fatalf("fig5 points = %d", len(s5.Points))
	}
	if s5.Points[0].X != 1.1 || s5.Points[9].X != 2.0 {
		t.Fatalf("fig5 x range: %v..%v", s5.Points[0].X, s5.Points[9].X)
	}
}

func TestFig6TimingShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.BoundRuns = 1
	s, err := Fig3BoundVsSources(cfg)
	if err != nil {
		t.Fatal(err)
	}
	timing := Fig6Timing(s)
	first := timing.Points[0]
	last := timing.Points[len(timing.Points)-1]
	// The exact bound's cost must grow much faster than the approximate
	// bound's — the message of Fig. 6.
	exactGrowth := last.ExactSeconds / first.ExactSeconds
	approxGrowth := last.ApproxSeconds / first.ApproxSeconds
	if exactGrowth < 4*approxGrowth {
		t.Fatalf("exact growth %.1fx vs approx %.1fx: exponential separation missing",
			exactGrowth, approxGrowth)
	}
}

func TestFig7Quick(t *testing.T) {
	cfg := QuickConfig()
	cfg.EstimatorRuns = 4
	cfg.OptimalRuns = 2
	s, err := Fig7EstimatorVsSources(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 7 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		opt := p.ByAlg["Optimal"].Accuracy
		for _, name := range []string{"EM-Ext", "EM", "EM-Social"} {
			acc := p.ByAlg[name].Accuracy
			if acc <= 0.3 || acc > 1 {
				t.Fatalf("%s accuracy %v at n=%g", name, acc, p.X)
			}
			// No estimator may beat the bound by more than sampling noise.
			if acc > opt+0.1 {
				t.Fatalf("%s (%v) above optimal (%v) at n=%g", name, acc, opt, p.X)
			}
		}
	}
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "EM-Ext") {
		t.Fatal("render missing algorithms")
	}
}

func TestEmpiricalQuick(t *testing.T) {
	cfg := QuickConfig()
	cfg.EmpiricalScale = 40
	res, err := Empirical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Scores) != len(EmpiricalAlgNames) {
			t.Fatalf("%s: %d scores", row.Scenario.Name, len(row.Scores))
		}
		for name, s := range row.Scores {
			if acc := s.Accuracy(); acc < 0 || acc > 1 {
				t.Fatalf("%s/%s accuracy %v", row.Scenario.Name, name, acc)
			}
		}
	}
	var sb strings.Builder
	if err := res.RenderTableIII(&sb); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderFig11(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Ukraine", "Paris Attack", "Truth-Finder"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChartsRender(t *testing.T) {
	cfg := QuickConfig()
	cfg.BoundRuns = 1
	bs, err := Fig4BoundVsTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := bs.Chart().RenderSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "approx (Gibbs)") {
		t.Fatal("bound chart missing series")
	}
	sb.Reset()
	if err := bs.TimingChart().RenderSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "seconds per run") {
		t.Fatal("timing chart missing axis label")
	}

	cfg.EstimatorRuns = 2
	cfg.OptimalRuns = 1
	es, err := Fig9EstimatorVsTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := es.Chart().RenderSVG(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EM-Ext", "Optimal"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("estimator chart missing %q", want)
		}
	}
}

func TestCSVExport(t *testing.T) {
	cfg := QuickConfig()
	cfg.BoundRuns = 1
	bs, err := Fig4BoundVsTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := bs.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(bs.Points)+1 {
		t.Fatalf("%d CSV lines for %d points", len(lines), len(bs.Points))
	}
	if !strings.HasPrefix(lines[0], "tau,exact,approx") {
		t.Fatalf("header: %s", lines[0])
	}

	cfg.EstimatorRuns = 2
	es, err := ExtDepthEstimators(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := es.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "EM-Ext_acc") {
		t.Fatal("estimator CSV header broken")
	}
}

func TestExtSybilQuick(t *testing.T) {
	cfg := QuickConfig()
	cfg.EmpiricalScale = 40
	cfg.EmpiricalSeeds = 1
	res, err := ExtSybilAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 || res.Points[0].Sybils != 0 {
		t.Fatalf("points: %+v", res.Points)
	}
	for _, p := range res.Points {
		for _, a := range EmpiricalAlgNames {
			if acc := p.Scores[a].Accuracy(); acc < 0 || acc > 1 {
				t.Fatalf("sybils=%d %s accuracy %v", p.Sybils, a, acc)
			}
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sybil") {
		t.Fatal("render missing label")
	}
}

// TestParallelSweepMatchesSerial: the worker pool must not change the
// aggregated numbers.
func TestParallelSweepMatchesSerial(t *testing.T) {
	cfg := QuickConfig()
	cfg.EstimatorRuns = 4
	cfg.OptimalRuns = 1
	cfg.Workers = 1
	serial, err := Fig9EstimatorVsTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Fig9EstimatorVsTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range serial.Points {
		for _, a := range []string{"EM-Ext", "EM", "EM-Social", "Optimal"} {
			if serial.Points[k].ByAlg[a] != par.Points[k].ByAlg[a] {
				t.Fatalf("point %d alg %s differs between serial and parallel", k, a)
			}
		}
	}
}

func TestEmpiricalChartAndCSV(t *testing.T) {
	cfg := QuickConfig()
	cfg.EmpiricalScale = 60
	res, err := Empirical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Chart().RenderSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Truth-Finder") {
		t.Fatal("empirical chart missing series")
	}
	sb.Reset()
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	// header + 5 datasets × 7 algorithms.
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+5*7 {
		t.Fatalf("%d CSV lines", len(lines))
	}
}

func TestFig8AndFig10SweepDefinitions(t *testing.T) {
	cfg := QuickConfig()
	cfg.EstimatorRuns = 1
	cfg.OptimalRuns = 0
	s8, err := Fig8EstimatorVsAssertions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s8.Points) != 10 || s8.Points[0].X != 10 || s8.Points[9].X != 100 {
		t.Fatalf("fig8 sweep: %+v", s8.Points)
	}
	s10, err := Fig10EstimatorVsOdds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s10.Points) != 10 || s10.Points[0].X != 1.1 {
		t.Fatalf("fig10 sweep: %+v", s10.Points)
	}
}

func TestConfigNormalization(t *testing.T) {
	var zero Config
	n := zero.normalized()
	d := DefaultConfig()
	if n.BoundRuns != d.BoundRuns || n.EstimatorRuns != d.EstimatorRuns ||
		n.OptimalRuns != d.OptimalRuns || n.GibbsSweeps != d.GibbsSweeps ||
		n.TopK != d.TopK || n.EmpiricalScale != 1 || n.EmpiricalSeeds != 3 {
		t.Fatalf("normalized zero config: %+v", n)
	}
}

// TestBenchParallelInjectedClock runs a tiny parallel benchmark with a fixed
// clock and checks the report stamp comes from it, not the wall clock.
func TestBenchParallelInjectedClock(t *testing.T) {
	fixed := time.Date(2016, 6, 27, 9, 30, 0, 0, time.UTC)
	rep, err := BenchParallel(Config{Seed: 11}, BenchParallelOptions{
		EMSources:    5,
		EMAssertions: 10,
		EMIters:      1,
		Restarts:     1,
		ExactN:       4,
		Chains:       1,
		Sweeps:       10,
		Reps:         1,
		Workers:      []int{1},
		Clock:        func() time.Time { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GeneratedAt != "2016-06-27T09:30:00Z" {
		t.Fatalf("GeneratedAt = %q, want the injected clock's stamp", rep.GeneratedAt)
	}
	if len(rep.Cases) == 0 {
		t.Fatal("benchmark produced no cases")
	}
	for _, c := range rep.Cases {
		if !c.Identical {
			t.Errorf("case %s workers=%d: output not identical to serial", c.Name, c.Workers)
		}
	}
}

// TestBenchQualOverhead runs a tiny quality-overhead benchmark with a fixed
// clock: the stamp comes from the injected clock, refits are observed, the
// fit/monitor split is sane, and the 5% CI gate passes at smoke scale.
func TestBenchQualOverhead(t *testing.T) {
	fixed := time.Date(2016, 6, 27, 9, 30, 0, 0, time.UTC)
	rep, err := BenchQual(Config{Seed: 11}, BenchQualOptions{
		Scale: 20, Batch: 64, Reps: 1,
		Clock: func() time.Time { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GeneratedAt != "2016-06-27T09:30:00Z" {
		t.Fatalf("GeneratedAt = %q, want the injected clock's stamp", rep.GeneratedAt)
	}
	if rep.Ticks == 0 || rep.Claims == 0 {
		t.Fatalf("no refits observed: %+v", rep)
	}
	if rep.FitMillis <= 0 || rep.MonitorMillis <= 0 {
		t.Fatalf("degenerate timing split: fit %v ms, monitor %v ms", rep.FitMillis, rep.MonitorMillis)
	}
	if ratio := rep.MonitorMillis / rep.FitMillis; math.Abs(rep.Overhead-ratio) > 1e-12 {
		t.Fatalf("overhead %v does not match monitor/fit = %v", rep.Overhead, ratio)
	}
	// The strict 5% gate belongs to the dedicated benchqual CI step;
	// under -race (which taxes the monitor and the fit unevenly) and with
	// sibling tests on the same core, this sanity bound is deliberately
	// loose.
	if err := rep.Check(0.2); err != nil {
		t.Fatalf("monitor overhead failed even the loose sanity bound: %v", err)
	}
	if err := (BenchQualReport{}).Check(0.05); err == nil {
		t.Fatal("empty report passed Check")
	}
}
