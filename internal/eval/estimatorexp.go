package eval

import (
	"fmt"
	"io"

	"depsense/internal/baselines"
	"depsense/internal/bound"
	"depsense/internal/core"
	"depsense/internal/factfind"
	"depsense/internal/parallel"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
)

// estimatorAlgNames is the lineup of the simulation experiments
// (Section V-B), in the paper's order.
var estimatorAlgNames = []string{"EM-Ext", "EM", "EM-Social", "Optimal"}

// AlgMetrics aggregates one algorithm's performance at one sweep point.
type AlgMetrics struct {
	Accuracy float64
	FalsePos float64
	FalseNeg float64
	CI95     float64
}

// EstimatorPoint is one sweep point of Figs. 7-10.
type EstimatorPoint struct {
	X float64
	// ByAlg maps algorithm name (EM-Ext, EM, EM-Social, Optimal) to its
	// metrics; Optimal is the transformed error bound 1-Err.
	ByAlg map[string]AlgMetrics
}

// EstimatorSeries is one full sweep.
type EstimatorSeries struct {
	Label  string
	XName  string
	Points []EstimatorPoint
}

// Render writes accuracy plus FP/FN decomposition per algorithm.
func (s EstimatorSeries) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, s.Label); err != nil {
		return err
	}
	header := []string{s.XName}
	for _, a := range estimatorAlgNames {
		header = append(header, a, a+"_fp", a+"_fn")
	}
	t := &table{header: header}
	for _, p := range s.Points {
		row := []string{fmt.Sprintf("%g", p.X)}
		for _, a := range estimatorAlgNames {
			m := p.ByAlg[a]
			row = append(row, f3(m.Accuracy), f3(m.FalsePos), f3(m.FalseNeg))
		}
		t.add(row...)
	}
	return t.write(w)
}

// runMetrics holds one repetition's outcomes: indexes 0-2 are the three
// estimators in lineup order; index 3 is the optimal bound (valid flags
// distinguish the repetitions that computed it).
type runMetrics struct {
	acc, fp, fn [4]float64
	hasOptimal  bool
}

// estimatorSweep runs the three EM variants and the optimal bound across
// the generated configurations. Repetitions are independent and run on a
// bounded worker pool; aggregation is sequential over pre-indexed slots, so
// results are identical to a serial run.
func estimatorSweep(label, xName string, xs []float64, cfgs []synthetic.Config, c Config) (EstimatorSeries, error) {
	c = c.normalized()
	series := EstimatorSeries{Label: label, XName: xName}
	for k, cfg := range cfgs {
		runs := make([]runMetrics, c.EstimatorRuns)
		err := parallel.ForEachCtx(c.Ctx, c.EstimatorRuns, c.Workers, func(r int) error {
			rng := randutil.New(c.Seed + int64(10000*k+r))
			w, err := synthetic.Generate(cfg, rng)
			if err != nil {
				return fmt.Errorf("eval: %s point %d: %w", label, k, err)
			}
			algs := []factfind.FactFinder{
				&core.EMExt{Opts: core.Options{Seed: int64(r)}},
				&baselines.EM{Opts: core.Options{Seed: int64(r)}},
				&baselines.EMSocial{Opts: core.Options{Seed: int64(r)}},
			}
			for ai, alg := range algs {
				res, err := alg.RunContext(c.Ctx, w.Dataset)
				if err != nil {
					return fmt.Errorf("eval: %s %s: %w", label, alg.Name(), err)
				}
				cl, err := stats.Classify(res.Decisions(factfind.DefaultThreshold), w.Truth)
				if err != nil {
					return err
				}
				runs[r].acc[ai] = cl.Accuracy
				runs[r].fp[ai] = cl.FalsePosRate
				runs[r].fn[ai] = cl.FalseNegRate
			}
			if r < c.OptimalRuns {
				br, err := bound.ForDatasetContext(c.Ctx, w.Dataset, w.TrueParams, bound.DatasetOptions{
					Method:     bound.MethodApprox,
					MaxColumns: 8,
					Approx:     bound.ApproxOptions{MaxSweeps: c.GibbsSweeps / 4},
				}, rng)
				if err != nil {
					return fmt.Errorf("eval: %s optimal: %w", label, err)
				}
				runs[r].acc[3] = 1 - br.Err
				runs[r].fp[3] = br.FalsePos
				runs[r].fn[3] = br.FalseNeg
				runs[r].hasOptimal = true
			}
			return nil
		})
		if err != nil {
			return EstimatorSeries{}, err
		}

		accs := map[string]*stats.Series{}
		fps := map[string]*stats.Series{}
		fns := map[string]*stats.Series{}
		for _, a := range estimatorAlgNames {
			accs[a], fps[a], fns[a] = &stats.Series{}, &stats.Series{}, &stats.Series{}
		}
		for _, rm := range runs {
			for ai, a := range [...]string{"EM-Ext", "EM", "EM-Social"} {
				accs[a].Add(rm.acc[ai])
				fps[a].Add(rm.fp[ai])
				fns[a].Add(rm.fn[ai])
			}
			if rm.hasOptimal {
				accs["Optimal"].Add(rm.acc[3])
				fps["Optimal"].Add(rm.fp[3])
				fns["Optimal"].Add(rm.fn[3])
			}
		}
		point := EstimatorPoint{X: xs[k], ByAlg: map[string]AlgMetrics{}}
		for _, a := range estimatorAlgNames {
			point.ByAlg[a] = AlgMetrics{
				Accuracy: accs[a].Mean(),
				FalsePos: fps[a].Mean(),
				FalseNeg: fns[a].Mean(),
				CI95:     accs[a].CI95(),
			}
		}
		series.Points = append(series.Points, point)
	}
	return series, nil
}

// Fig7EstimatorVsSources varies n from 20 to 50 in steps of 5 (Fig. 7).
func Fig7EstimatorVsSources(c Config) (EstimatorSeries, error) {
	var cfgs []synthetic.Config
	var xs []float64
	for n := 20; n <= 50; n += 5 {
		cfg := synthetic.EstimatorConfig()
		cfg.Sources = n
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(n))
	}
	return estimatorSweep("Fig 7: estimator accuracy vs number of sources", "n", xs, cfgs, c)
}

// Fig8EstimatorVsAssertions varies m from 10 to 100 in steps of 10 at
// n = 100 (Fig. 8).
func Fig8EstimatorVsAssertions(c Config) (EstimatorSeries, error) {
	var cfgs []synthetic.Config
	var xs []float64
	for m := 10; m <= 100; m += 10 {
		cfg := synthetic.EstimatorConfig()
		cfg.Sources = 100
		cfg.Assertions = m
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(m))
	}
	return estimatorSweep("Fig 8: estimator accuracy vs number of assertions (n=100)", "m", xs, cfgs, c)
}

// Fig9EstimatorVsTrees varies τ from 1 to 11 (Fig. 9).
func Fig9EstimatorVsTrees(c Config) (EstimatorSeries, error) {
	var cfgs []synthetic.Config
	var xs []float64
	for tau := 1; tau <= 11; tau++ {
		cfg := synthetic.EstimatorConfig()
		cfg.Trees = synthetic.FixedInt(tau)
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(tau))
	}
	return estimatorSweep("Fig 9: estimator accuracy vs number of dependency trees", "tau", xs, cfgs, c)
}

// Fig10EstimatorVsOdds fixes the independent odds at 2 and varies the
// dependent odds from 1.1 to 2.0 (Fig. 10).
func Fig10EstimatorVsOdds(c Config) (EstimatorSeries, error) {
	var cfgs []synthetic.Config
	var xs []float64
	for odds := 1.1; odds < 2.05; odds += 0.1 {
		cfg := synthetic.EstimatorConfig()
		cfg.PIndepT = synthetic.Fixed(2.0 / 3.0)
		cfg.PDepT = synthetic.Fixed(synthetic.OddsToProb(odds))
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(int(odds*10+0.5))/10)
	}
	return estimatorSweep("Fig 10: estimator accuracy vs dependent discrimination odds", "depT_odds", xs, cfgs, c)
}
