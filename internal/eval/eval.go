// Package eval is the experiment harness: one runner per table and figure
// of the paper's evaluation (Section V), each producing the same rows or
// series the paper reports. The cmd/experiments binary and the repository's
// benchmarks are thin wrappers around these runners.
//
// Runners are deterministic given a seed. The Config knobs trade fidelity
// (the paper's run counts) against wall-clock time; DefaultConfig matches
// the paper, QuickConfig is a fast smoke-scale variant used in tests.
package eval

import (
	"context"
	"fmt"
	"io"
	"strings"
)

// Config scales the experiment runners.
type Config struct {
	// Ctx, when set, bounds the runners: cancellation stops dispatching
	// repetitions and propagates the context's error. It lives in Config
	// rather than in every Fig* signature so the dozen exported runners
	// keep their simple (Config) shape. Nil means context.Background().
	Ctx context.Context
	// Seed drives all randomness.
	Seed int64
	// BoundRuns is the number of independent repetitions for the bound
	// experiments (the paper uses 20).
	BoundRuns int
	// EstimatorRuns is the number of repetitions for the estimator
	// simulations (the paper uses 300).
	EstimatorRuns int
	// OptimalRuns bounds how many repetitions compute the "Optimal" curve
	// (the approximate bound is costlier than the estimators; the average
	// stabilizes well before EstimatorRuns).
	OptimalRuns int
	// MaxExactColumns caps the distinct dependency columns evaluated
	// exactly per run; 0 means all (the paper's exact bound). Sampling
	// trades a little accuracy for large speedups at n ≥ 20.
	MaxExactColumns int
	// GibbsSweeps caps the Gibbs chains of the approximate bound.
	GibbsSweeps int
	// TopK is the empirical evaluation cut-off (the paper grades the
	// top 100).
	TopK int
	// EmpiricalScale divides the Table III scenario volumes (1 = full
	// scale).
	EmpiricalScale int
	// EmpiricalSeeds is the number of independently simulated datasets per
	// scenario; grading counts are pooled across them. The paper grades
	// one real dataset per event, but simulated datasets carry seed
	// variance worth averaging out (default 3).
	EmpiricalSeeds int
	// Workers bounds the experiment runners' parallelism across
	// independent repetitions (0 = GOMAXPROCS, 1 = sequential).
	Workers int
}

// DefaultConfig reproduces the paper's experiment scales.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		BoundRuns:       20,
		EstimatorRuns:   300,
		OptimalRuns:     20,
		MaxExactColumns: 0,
		GibbsSweeps:     20000,
		TopK:            100,
		EmpiricalScale:  1,
	}
}

// QuickConfig is a reduced-scale configuration for tests and smoke runs.
func QuickConfig() Config {
	return Config{
		Seed:            1,
		BoundRuns:       3,
		EstimatorRuns:   8,
		OptimalRuns:     3,
		MaxExactColumns: 6,
		GibbsSweeps:     1500,
		TopK:            100,
		EmpiricalScale:  20,
		EmpiricalSeeds:  1,
	}
}

func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.BoundRuns <= 0 {
		c.BoundRuns = d.BoundRuns
	}
	if c.EstimatorRuns <= 0 {
		c.EstimatorRuns = d.EstimatorRuns
	}
	if c.OptimalRuns <= 0 {
		c.OptimalRuns = d.OptimalRuns
	}
	if c.GibbsSweeps <= 0 {
		c.GibbsSweeps = d.GibbsSweeps
	}
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.EmpiricalScale <= 0 {
		c.EmpiricalScale = 1
	}
	if c.EmpiricalSeeds <= 0 {
		c.EmpiricalSeeds = 3
	}
	return c
}

// table renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
