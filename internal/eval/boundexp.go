package eval

import (
	"fmt"
	"io"
	"time"

	"depsense/internal/bound"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
)

// TableIResult reproduces the walk-through example of Section III-A.
type TableIResult struct {
	Result bound.Result
	// PaperErr is the value the paper reports (0.26980433).
	PaperErr float64
}

// TableI recomputes the bound from the paper's tabulated pattern
// likelihoods.
func TableI() (TableIResult, error) {
	p1 := []float64{
		0.18546216, 0.17606773, 0.00033244, 0.01971855,
		0.24427898, 0.19063986, 0.02321803, 0.16028224,
	}
	p0 := []float64{
		0.05851677, 0.05300123, 0.12803859, 0.16032756,
		0.14231588, 0.08222352, 0.18716734, 0.18840910,
	}
	res, err := bound.FromPatternTable(p1, p0, 0.5)
	if err != nil {
		return TableIResult{}, err
	}
	return TableIResult{Result: res, PaperErr: 0.26980433}, nil
}

// Render writes the Table I comparison.
func (r TableIResult) Render(w io.Writer) error {
	t := &table{header: []string{"quantity", "reproduced", "paper"}}
	t.add("Err", fmt.Sprintf("%.8f", r.Result.Err), fmt.Sprintf("%.8f", r.PaperErr))
	t.add("false positive part", fmt.Sprintf("%.8f", r.Result.FalsePos), "-")
	t.add("false negative part", fmt.Sprintf("%.8f", r.Result.FalseNeg), "-")
	return t.write(w)
}

// BoundPoint is one sweep point of the bound-precision experiments
// (Figs. 3-5) plus the timing data of Fig. 6.
type BoundPoint struct {
	X             float64
	Exact         float64
	Approx        float64
	ExactFP       float64
	ApproxFP      float64
	ExactFN       float64
	ApproxFN      float64
	AbsDiff       float64
	ExactSeconds  float64
	ApproxSeconds float64
}

// BoundSeries is a full sweep.
type BoundSeries struct {
	Label   string
	XName   string
	Points  []BoundPoint
	MaxDiff float64
}

// Render writes the sweep as a table.
func (s BoundSeries) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s (max |exact-approx| = %.4f)\n", s.Label, s.MaxDiff); err != nil {
		return err
	}
	t := &table{header: []string{
		s.XName, "exact", "approx", "exactFP", "approxFP", "exactFN", "approxFN", "exact_s", "approx_s",
	}}
	for _, p := range s.Points {
		t.add(fmt.Sprintf("%g", p.X), f4(p.Exact), f4(p.Approx),
			f4(p.ExactFP), f4(p.ApproxFP), f4(p.ExactFN), f4(p.ApproxFN),
			f4(p.ExactSeconds), f4(p.ApproxSeconds))
	}
	return t.write(w)
}

// boundSweep runs exact and approximate bounds over generated worlds for
// each configuration in cfgs.
func boundSweep(label, xName string, xs []float64, cfgs []synthetic.Config, c Config) (BoundSeries, error) {
	c = c.normalized()
	series := BoundSeries{Label: label, XName: xName}
	for k, cfg := range cfgs {
		var exact, approx, exFP, apFP, exFN, apFN stats.Series
		var exactTime, approxTime time.Duration
		for r := 0; r < c.BoundRuns; r++ {
			if err := c.Ctx.Err(); err != nil {
				return BoundSeries{}, err
			}
			rng := randutil.New(c.Seed + int64(1000*k+r))
			w, err := synthetic.Generate(cfg, rng)
			if err != nil {
				return BoundSeries{}, fmt.Errorf("eval: %s point %d: %w", label, k, err)
			}
			// Both methods must see the SAME sampled column subset for the
			// precision comparison to measure approximation error rather
			// than sampling disagreement, so they get identically seeded
			// generators.
			colSeed := rng.Int63()
			start := time.Now() //lint:allow seedsource wall-clock timing: this experiment reports bound computation seconds
			ex, err := bound.ForDatasetContext(c.Ctx, w.Dataset, w.TrueParams, bound.DatasetOptions{
				Method:     bound.MethodExact,
				MaxColumns: c.MaxExactColumns,
				Workers:    c.Workers,
			}, randutil.New(colSeed))
			if err != nil {
				return BoundSeries{}, fmt.Errorf("eval: %s exact: %w", label, err)
			}
			exactTime += time.Since(start)

			start = time.Now() //lint:allow seedsource wall-clock timing: this experiment reports bound computation seconds
			ap, err := bound.ForDatasetContext(c.Ctx, w.Dataset, w.TrueParams, bound.DatasetOptions{
				Method:     bound.MethodApprox,
				MaxColumns: c.MaxExactColumns,
				Approx:     bound.ApproxOptions{MaxSweeps: c.GibbsSweeps},
				Workers:    c.Workers,
			}, randutil.New(colSeed))
			if err != nil {
				return BoundSeries{}, fmt.Errorf("eval: %s approx: %w", label, err)
			}
			approxTime += time.Since(start)

			exact.Add(ex.Err)
			approx.Add(ap.Err)
			exFP.Add(ex.FalsePos)
			apFP.Add(ap.FalsePos)
			exFN.Add(ex.FalseNeg)
			apFN.Add(ap.FalseNeg)
		}
		runs := float64(c.BoundRuns)
		p := BoundPoint{
			X:             xs[k],
			Exact:         exact.Mean(),
			Approx:        approx.Mean(),
			ExactFP:       exFP.Mean(),
			ApproxFP:      apFP.Mean(),
			ExactFN:       exFN.Mean(),
			ApproxFN:      apFN.Mean(),
			ExactSeconds:  exactTime.Seconds() / runs,
			ApproxSeconds: approxTime.Seconds() / runs,
		}
		p.AbsDiff = abs(p.Exact - p.Approx)
		if p.AbsDiff > series.MaxDiff {
			series.MaxDiff = p.AbsDiff
		}
		series.Points = append(series.Points, p)
	}
	return series, nil
}

// Fig3BoundVsSources varies n from 5 to 25 in steps of 5 (Fig. 3), also
// yielding the timing comparison of Fig. 6.
func Fig3BoundVsSources(c Config) (BoundSeries, error) {
	var cfgs []synthetic.Config
	var xs []float64
	for n := 5; n <= 25; n += 5 {
		cfg := synthetic.DefaultConfig()
		cfg.Sources = n
		if cfg.Trees.Hi > n {
			cfg.Trees = synthetic.IntRange{Lo: (n + 1) / 2, Hi: (n + 1) / 2}
		}
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(n))
	}
	return boundSweep("Fig 3: bound precision vs number of sources", "n", xs, cfgs, c)
}

// Fig4BoundVsTrees varies τ from 1 to 11 (Fig. 4).
func Fig4BoundVsTrees(c Config) (BoundSeries, error) {
	var cfgs []synthetic.Config
	var xs []float64
	for tau := 1; tau <= 11; tau++ {
		cfg := synthetic.DefaultConfig()
		cfg.Trees = synthetic.FixedInt(tau)
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(tau))
	}
	return boundSweep("Fig 4: bound precision vs number of dependency trees", "tau", xs, cfgs, c)
}

// Fig5BoundVsOdds fixes the independent discrimination odds at 2 and varies
// the dependent odds from 1.1 to 2.0 (Fig. 5).
func Fig5BoundVsOdds(c Config) (BoundSeries, error) {
	var cfgs []synthetic.Config
	var xs []float64
	for odds := 1.1; odds < 2.05; odds += 0.1 {
		cfg := synthetic.DefaultConfig()
		cfg.PIndepT = synthetic.Fixed(2.0 / 3.0)
		cfg.PDepT = synthetic.Fixed(synthetic.OddsToProb(odds))
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(int(odds*10+0.5))/10)
	}
	return boundSweep("Fig 5: bound precision vs dependent discrimination odds", "depT_odds", xs, cfgs, c)
}

// Fig6Timing extracts the computation-time series of Fig. 6 from the Fig. 3
// sweep (exact cost explodes with n; approximate cost stays flat).
func Fig6Timing(s BoundSeries) BoundSeries {
	out := BoundSeries{Label: "Fig 6: bound computation time (seconds per run)", XName: s.XName, Points: s.Points}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
