package eval

import (
	"fmt"
	"io"
	"strconv"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/grader"
	"depsense/internal/randutil"
	"depsense/internal/twittersim"
)

// EmpiricalAlgNames is the Fig. 11 lineup in the paper's order.
var EmpiricalAlgNames = []string{
	"EM-Ext", "EM-Social", "EM", "Voting", "Sums", "Average.Log", "Truth-Finder",
}

// EmpiricalRow is one dataset's results: the realized Table III statistics
// and the Fig. 11 top-K grading per algorithm.
type EmpiricalRow struct {
	Scenario twittersim.Scenario
	Summary  twittersim.Summary
	// DatasetSummary describes the pipeline-derived source-claim matrix
	// (post-clustering).
	DatasetAssertions int
	// Scores maps algorithm name to its graded top-K score.
	Scores map[string]grader.Score
}

// EmpiricalResult is the full empirical evaluation.
type EmpiricalResult struct {
	Rows []EmpiricalRow
	TopK int
}

// Empirical runs the Apollo pipeline with every Fig. 11 algorithm over the
// five Table III-scale simulated Twitter datasets.
func Empirical(c Config) (EmpiricalResult, error) {
	c = c.normalized()
	out := EmpiricalResult{TopK: c.TopK}
	for si, preset := range twittersim.Presets() {
		sc := preset
		if c.EmpiricalScale > 1 {
			sc = twittersim.Small(preset.Name, c.EmpiricalScale)
		}
		row := EmpiricalRow{Scenario: sc, Scores: make(map[string]grader.Score)}
		for seed := 0; seed < c.EmpiricalSeeds; seed++ {
			rng := randutil.New(c.Seed + int64(100*si+17*seed))
			w, err := twittersim.Generate(sc, rng)
			if err != nil {
				return EmpiricalResult{}, fmt.Errorf("eval: empirical %s: %w", sc.Name, err)
			}
			if seed == 0 {
				row.Summary = w.Summarize()
			}
			msgs := make([]apollo.Message, len(w.Tweets))
			for i, t := range w.Tweets {
				msgs[i] = apollo.Message{Source: t.Source, Time: int64(t.ID), Text: t.Text}
			}
			in := apollo.Input{NumSources: sc.Sources, Messages: msgs, Graph: w.Graph}

			for _, alg := range baselines.All(c.Seed + int64(seed)) {
				pipe, err := apollo.RunContext(c.Ctx, in, alg, apollo.Options{TopK: c.TopK})
				if err != nil {
					return EmpiricalResult{}, fmt.Errorf("eval: empirical %s %s: %w", sc.Name, alg.Name(), err)
				}
				if seed == 0 {
					row.DatasetAssertions = pipe.Dataset.M()
				}
				labels, err := grader.Grade(pipe.MessageAssertion, w.Tweets, w.Kinds)
				if err != nil {
					return EmpiricalResult{}, err
				}
				score, err := grader.ScoreTopK(pipe.Ranked, labels)
				if err != nil {
					return EmpiricalResult{}, err
				}
				// Pool grading counts across seeds; Accuracy() of the
				// pooled counts is the seed-weighted average.
				agg := row.Scores[alg.Name()]
				agg.True += score.True
				agg.False += score.False
				agg.Opinion += score.Opinion
				row.Scores[alg.Name()] = agg
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RenderTableIII writes the dataset summary next to the paper's targets
// (Table III).
func (r EmpiricalResult) RenderTableIII(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Table III: simulated dataset scale (reproduced vs paper target)"); err != nil {
		return err
	}
	t := &table{header: []string{
		"dataset", "sources", "(paper)", "assertions", "(paper)",
		"claims", "(paper)", "original", "(paper)", "clusters",
	}}
	for _, row := range r.Rows {
		t.add(row.Scenario.Name,
			strconv.Itoa(row.Summary.Sources), strconv.Itoa(row.Scenario.Sources),
			strconv.Itoa(row.Summary.Assertions), strconv.Itoa(row.Scenario.Assertions),
			strconv.Itoa(row.Summary.TotalClaims), strconv.Itoa(row.Scenario.Claims),
			strconv.Itoa(row.Summary.OriginalClaims), strconv.Itoa(row.Scenario.OriginalClaims),
			strconv.Itoa(row.DatasetAssertions),
		)
	}
	return t.write(w)
}

// RenderFig11 writes the per-algorithm top-K accuracies (Fig. 11).
func (r EmpiricalResult) RenderFig11(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 11: top-%d accuracy #True/(#True+#False+#Opinion)\n", r.TopK); err != nil {
		return err
	}
	header := append([]string{"dataset"}, EmpiricalAlgNames...)
	t := &table{header: header}
	for _, row := range r.Rows {
		cells := []string{row.Scenario.Name}
		for _, a := range EmpiricalAlgNames {
			cells = append(cells, f3(row.Scores[a].Accuracy()))
		}
		t.add(cells...)
	}
	return t.write(w)
}
