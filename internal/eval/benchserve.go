package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"depsense/internal/httpapi"
	"depsense/internal/obs"
)

// BenchServeOptions sizes the serving-layer load benchmark. The zero value
// selects the acceptance-scale defaults (2000 open-loop requests at
// 500 req/s over 32 unique payloads, then a 16-way saturation burst).
type BenchServeOptions struct {
	// Requests is the open-loop arrival count (default 2000).
	Requests int
	// RatePerSec is the open-loop arrival rate; arrivals are scheduled at
	// start + i/rate regardless of completions — the generator never waits
	// for the server, which is what makes queueing visible (default 500).
	RatePerSec float64
	// Unique is how many distinct payloads the arrivals cycle through;
	// everything beyond the first occurrence of each is answerable from the
	// cache or an in-flight coalesced run (default 32).
	Unique int
	// Algorithm names the fact-finder every payload requests
	// (default "EM-Ext").
	Algorithm string
	// CacheSize / CacheTTL configure the open-loop server's result cache
	// (defaults: the httpapi defaults).
	CacheSize int
	CacheTTL  time.Duration
	// Burst is the size of the saturation phase: a deliberately heavy
	// request holds the single compute slot of a MaxInFlight=1,
	// QueueDepth=0, cache-disabled server while Burst-1 distinct probes are
	// fired at it; every probe must shed with 429 + Retry-After
	// (default 16).
	Burst int
	// Clock stamps the report's GeneratedAt; nil means time.Now. The latency
	// measurements themselves always read the wall clock — they measure it.
	Clock func() time.Time
}

func (o BenchServeOptions) normalized() BenchServeOptions {
	if o.Requests <= 0 {
		o.Requests = 2000
	}
	if o.RatePerSec <= 0 {
		o.RatePerSec = 500
	}
	if o.Unique <= 0 {
		o.Unique = 32
	}
	if o.Algorithm == "" {
		o.Algorithm = "EM-Ext"
	}
	if o.Burst <= 0 {
		o.Burst = 16
	}
	return o
}

// BenchServeReport is the machine-readable output of the serving benchmark,
// written as BENCH_serving.json by cmd/experiments.
type BenchServeReport struct {
	// GOMAXPROCS and NumCPU record the machine the latencies were measured on.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// GeneratedAt is the RFC 3339 wall-clock time of the run.
	GeneratedAt string `json:"generated_at"`

	// Open-loop phase.
	Requests   int     `json:"requests"`
	RatePerSec float64 `json:"rate_per_sec"`
	Unique     int     `json:"unique_payloads"`
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
	// Hits/Misses/Coalesced are the server's own serving counters after the
	// open-loop phase; HitRate counts replays alone, ReuseRate adds requests
	// that shared an in-flight run.
	Hits      float64 `json:"cache_hits"`
	Misses    float64 `json:"cache_misses"`
	Coalesced float64 `json:"coalesced"`
	HitRate   float64 `json:"hit_rate"`
	ReuseRate float64 `json:"reuse_rate"`
	// OK200 counts open-loop 200s (every open-loop request should succeed —
	// the open-loop server is unbounded).
	OK200 int `json:"ok_200"`

	// Saturation burst phase.
	Burst        int     `json:"burst"`
	BurstOK      int     `json:"burst_ok"`
	BurstShed    int     `json:"burst_shed"`
	ShedRate     float64 `json:"shed_rate"`
	ShedCounter  float64 `json:"shed_counter"`
	RetryAfterOK bool    `json:"retry_after_ok"`

	// AccountingOK holds when, on both servers, hits + misses equals the
	// request total and the in-flight/queued gauges drained to zero.
	AccountingOK bool `json:"accounting_ok"`
}

// Check is the CI gate: shed correctness (every 429 carried Retry-After and
// the burst actually shed), intact accounting, and a minimum reuse rate
// (cache hits plus coalesced requests over total).
func (r BenchServeReport) Check(minReuse float64) error {
	if !r.RetryAfterOK {
		return fmt.Errorf("eval: benchserve: a 429 response was missing Retry-After")
	}
	if r.BurstShed == 0 {
		return fmt.Errorf("eval: benchserve: the %d-way saturation burst shed nothing", r.Burst)
	}
	if !r.AccountingOK {
		return fmt.Errorf("eval: benchserve: serving counters do not reconcile (hits+misses != requests, or gauges did not drain)")
	}
	if r.ReuseRate < minReuse {
		return fmt.Errorf("eval: benchserve: reuse rate %.3f is below the required %.3f", r.ReuseRate, minReuse)
	}
	return nil
}

// BenchServe drives the HTTP serving layer the way a client fleet would:
// an open-loop arrival process (requests scheduled by the clock, not by
// completions) over a small set of repeating payloads against a cached,
// coalescing server, followed by a saturation burst against a one-slot
// server to verify load-shedding behaves. Requests go straight through
// Server.ServeHTTP — no sockets — so the numbers isolate the serving layer
// itself.
func BenchServe(c Config, o BenchServeOptions) (BenchServeReport, error) {
	c = c.normalized()
	o = o.normalized()
	clock := o.Clock
	if clock == nil {
		clock = time.Now // the injectable default, not a bare read
	}
	rep := BenchServeReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: clock().UTC().Format(time.RFC3339),
		Requests:    o.Requests,
		RatePerSec:  o.RatePerSec,
		Unique:      o.Unique,
		Burst:       o.Burst,
	}

	// ---- Open-loop phase: cache + coalescing, unbounded compute. ----
	reg := obs.NewRegistry()
	srv := httpapi.New(httpapi.Options{
		Seed:      c.Seed,
		Workers:   1,
		Metrics:   reg,
		CacheSize: o.CacheSize,
		CacheTTL:  o.CacheTTL,
	})
	payloads := make([][]byte, o.Unique)
	for v := range payloads {
		b, err := json.Marshal(openLoopPayload(v, o.Algorithm))
		if err != nil {
			return rep, fmt.Errorf("eval: benchserve payload: %w", err)
		}
		payloads[v] = b
	}

	lat := make([]float64, o.Requests)
	status := make([]int, o.Requests)
	var wg sync.WaitGroup
	start := time.Now() //lint:allow seedsource wall-clock timing measurement: this benchmark's output IS request latency
	for i := 0; i < o.Requests; i++ {
		due := time.Duration(float64(i) / o.RatePerSec * float64(time.Second))
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			issued := time.Since(start)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/factfind",
				bytes.NewReader(payloads[i%o.Unique])))
			lat[i] = (time.Since(start) - issued).Seconds()
			status[i] = rec.Code
		}(i)
	}
	wg.Wait()

	sort.Float64s(lat)
	rep.P50Millis = quantileAt(lat, 0.5) * 1000
	rep.P99Millis = quantileAt(lat, 0.99) * 1000
	for _, s := range status {
		if s == http.StatusOK {
			rep.OK200++
		}
	}
	rep.Hits = reg.Counter(httpapi.MetricCacheHits, "").Value()
	rep.Misses = reg.Counter(httpapi.MetricCacheMisses, "").Value()
	rep.Coalesced = reg.Counter(httpapi.MetricCoalesced, "").Value()
	rep.HitRate = rep.Hits / float64(o.Requests)
	rep.ReuseRate = (rep.Hits + rep.Coalesced) / float64(o.Requests)
	accounting := rep.Hits+rep.Misses == float64(o.Requests) &&
		reg.Gauge(httpapi.MetricComputeInFlight, "").Value() == 0 &&
		reg.Gauge(httpapi.MetricComputeQueued, "").Value() == 0

	// ---- Saturation burst: one compute slot, no queue, no cache. ----
	burstReg := obs.NewRegistry()
	burstSrv := httpapi.New(httpapi.Options{
		Seed:        c.Seed,
		Workers:     1,
		Metrics:     burstReg,
		CacheSize:   -1, // replay off: every request must compete for the slot
		MaxInFlight: 1,
		QueueDepth:  0,
	})
	rep.RetryAfterOK = true
	blockerBody, err := json.Marshal(blockerPayload())
	if err != nil {
		return rep, fmt.Errorf("eval: benchserve blocker payload: %w", err)
	}
	blockerDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		burstSrv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/factfind",
			bytes.NewReader(blockerBody)))
		blockerDone <- rec.Code
	}()
	// Wait until the blocker provably holds the compute slot; only then are
	// the probes guaranteed to find the pool saturated.
	held := false
	for i := 0; i < 15000; i++ {
		if burstReg.Gauge(httpapi.MetricComputeInFlight, "").Value() == 1 {
			held = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if held {
		for i := 0; i < o.Burst-1; i++ {
			b, err := json.Marshal(openLoopPayload(1000+i, o.Algorithm))
			if err != nil {
				return rep, fmt.Errorf("eval: benchserve probe payload: %w", err)
			}
			rec := httptest.NewRecorder()
			burstSrv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/factfind",
				bytes.NewReader(b)))
			switch rec.Code {
			case http.StatusOK:
				rep.BurstOK++
			case http.StatusTooManyRequests:
				rep.BurstShed++
				if rec.Header().Get("Retry-After") == "" {
					rep.RetryAfterOK = false
				}
			}
		}
	}
	if code := <-blockerDone; code == http.StatusOK {
		rep.BurstOK++
	}
	rep.ShedRate = float64(rep.BurstShed) / float64(o.Burst)
	rep.ShedCounter = burstReg.Counter(httpapi.MetricShed, "", obs.L("reason", "queue-full")).Value()
	burstHits := burstReg.Counter(httpapi.MetricCacheHits, "").Value()
	burstMisses := burstReg.Counter(httpapi.MetricCacheMisses, "").Value()
	rep.AccountingOK = accounting &&
		burstHits+burstMisses == float64(o.Burst) &&
		rep.ShedCounter == float64(rep.BurstShed) &&
		burstReg.Gauge(httpapi.MetricComputeInFlight, "").Value() == 0 &&
		burstReg.Gauge(httpapi.MetricComputeQueued, "").Value() == 0
	return rep, nil
}

// quantileAt reads the q-quantile from already-sorted samples (nearest-rank).
func quantileAt(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// openLoopPayload builds the v-th distinct open-loop request: the message
// text carries the variant token, so each variant hashes to its own cache
// key while the workload stays constant.
func openLoopPayload(v int, algorithm string) httpapi.Request {
	return httpapi.Request{
		Sources: 4,
		Follows: [][2]int{{1, 0}},
		Messages: []httpapi.Message{
			{Source: 0, Time: 1, Text: fmt.Sprintf("witness reported fire near plaza n%d #bench", v)},
			{Source: 1, Time: 2, Text: fmt.Sprintf("rt @user0: witness reported fire near plaza n%d #bench", v)},
			{Source: 2, Time: 3, Text: fmt.Sprintf("official denied outage near campus n%d #bench", v)},
			{Source: 3, Time: 4, Text: fmt.Sprintf("official denied outage near campus n%d #bench update", v)},
		},
		Algorithm: algorithm,
		TopK:      5,
	}
}

// blockerPayload builds the saturation blocker: an EM-Ext workload heavy
// enough (hundreds of sources, thousands of messages) to hold the compute
// slot for a macroscopic stretch while the shed probes arrive — including
// on a single-core host, where async preemption is the only concurrency.
func blockerPayload() httpapi.Request {
	// 2500 distinct assertions (the cluster stage must not merge them, so
	// every text is unique) × 4 claims each across 500 sources: EM-Ext at
	// this scale computes for a macroscopic stretch.
	const (
		sources    = 2000
		assertions = 12000
		claims     = 4
	)
	msgs := make([]httpapi.Message, 0, assertions*claims)
	for i := 0; i < assertions*claims; i++ {
		a := i % assertions
		msgs = append(msgs, httpapi.Message{
			Source: (a + i/assertions*7) % sources,
			Time:   int64(i),
			// Tokens are nearly all assertion-specific: at Jaccard 0.5 the
			// leader clusterer keeps every assertion in its own cluster.
			Text: fmt.Sprintf("incident%d sector%d status%d n%d #load", a, a, a, a),
		})
	}
	return httpapi.Request{
		Sources:   sources,
		Messages:  msgs,
		Algorithm: "EM-Ext",
		TopK:      10,
	}
}

// Render writes the benchmark as a table.
func (r BenchServeReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "serving under load (GOMAXPROCS=%d, NumCPU=%d)\n", r.GOMAXPROCS, r.NumCPU); err != nil {
		return err
	}
	t := &table{header: []string{"metric", "value"}}
	t.add("requests", fmt.Sprintf("%d @ %.0f req/s over %d payloads", r.Requests, r.RatePerSec, r.Unique))
	t.add("p50 latency", fmt.Sprintf("%.3f ms", r.P50Millis))
	t.add("p99 latency", fmt.Sprintf("%.3f ms", r.P99Millis))
	t.add("hit rate", fmt.Sprintf("%.3f (%g hits)", r.HitRate, r.Hits))
	t.add("reuse rate", fmt.Sprintf("%.3f (+%g coalesced)", r.ReuseRate, r.Coalesced))
	t.add("open-loop 200s", fmt.Sprintf("%d/%d", r.OK200, r.Requests))
	t.add("burst shed", fmt.Sprintf("%d/%d (shed rate %.3f)", r.BurstShed, r.Burst, r.ShedRate))
	t.add("retry-after ok", fmt.Sprintf("%t", r.RetryAfterOK))
	t.add("accounting ok", fmt.Sprintf("%t", r.AccountingOK))
	return t.write(w)
}

// WriteJSON writes the report as indented JSON.
func (r BenchServeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
