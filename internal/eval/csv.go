package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the sweep as CSV (one row per sweep point), convenient for
// external plotting of the reproduced figures.
func (s BoundSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{s.XName, "exact", "approx", "exact_fp", "approx_fp",
		"exact_fn", "approx_fn", "abs_diff", "exact_seconds", "approx_seconds"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range s.Points {
		row := []string{
			fmtF(p.X), fmtF(p.Exact), fmtF(p.Approx),
			fmtF(p.ExactFP), fmtF(p.ApproxFP),
			fmtF(p.ExactFN), fmtF(p.ApproxFN),
			fmtF(p.AbsDiff), fmtF(p.ExactSeconds), fmtF(p.ApproxSeconds),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the estimator sweep as CSV: accuracy, FP, FN and the 95%
// CI half-width per algorithm per sweep point.
func (s EstimatorSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{s.XName}
	for _, a := range estimatorAlgNames {
		header = append(header, a+"_acc", a+"_fp", a+"_fn", a+"_ci95")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range s.Points {
		row := []string{fmtF(p.X)}
		for _, a := range estimatorAlgNames {
			m := p.ByAlg[a]
			row = append(row, fmtF(m.Accuracy), fmtF(m.FalsePos), fmtF(m.FalseNeg), fmtF(m.CI95))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits one row per (dataset, algorithm) with the graded counts.
func (r EmpiricalResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "algorithm", "accuracy", "true", "false", "opinion"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		for _, a := range EmpiricalAlgNames {
			s := row.Scores[a]
			rec := []string{
				row.Scenario.Name, a, fmtF(s.Accuracy()),
				strconv.Itoa(s.True), strconv.Itoa(s.False), strconv.Itoa(s.Opinion),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return fmt.Sprintf("%g", v) }
