package eval

import (
	"fmt"
	"io"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/grader"
	"depsense/internal/randutil"
	"depsense/internal/synthetic"
	"depsense/internal/twittersim"
)

// ExtDepthEstimators is an extension experiment beyond the paper: the
// estimator comparison of Fig. 9 repeated over dependency forests of
// increasing depth (2 = the paper's level-two structure; deeper trees model
// repeat cascades — retweets of retweets). The paper's model conditions
// each source only on its direct ancestors, so EM-Ext requires no changes;
// the question the sweep answers is whether its advantage survives when
// independent evidence thins out with depth.
func ExtDepthEstimators(c Config) (EstimatorSeries, error) {
	var cfgs []synthetic.Config
	var xs []float64
	for depth := 2; depth <= 6; depth++ {
		cfg := synthetic.EstimatorConfig()
		cfg.Trees = synthetic.FixedInt(5)
		cfg.Depth = synthetic.IntRange{Lo: depth, Hi: depth}
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(depth))
	}
	return estimatorSweep("Extension: estimator accuracy vs dependency depth (tau=5)", "depth", xs, cfgs, c)
}

// SybilPoint is one sweep point of the sybil-attack extension.
type SybilPoint struct {
	Sybils int
	// Scores maps algorithm name to pooled top-K grading.
	Scores map[string]grader.Score
}

// SybilResult is the full attack sweep.
type SybilResult struct {
	Points []SybilPoint
	TopK   int
}

// ExtSybilAttack is an extension experiment beyond the paper: a coordinated
// bot network of growing size retweets a fixed set of rumors on the Ukraine
// scenario, and each fact-finder's graded top-K accuracy is tracked.
//
// The sweep exposes both sides of the dependency model. Up to moderate
// attack sizes EM-Ext holds steady (the bots' support is visibly dependent
// and discounted) while popularity-driven rankers degrade. At extreme sizes
// EM-Ext itself collapses: the model links each bot only to the retweeted
// author, not to its hundreds of siblings, so the bots' claims and silences
// enter the likelihood as independent evidence and any per-pair channel
// ratio r ≠ 1 compounds to r^(#bots) — a conditional-independence failure no
// parameter estimate can absorb. EM-Social, which deletes dependent claims
// outright, is the more robust policy at that extreme. This is the
// quantitative version of the model limitation noted in DESIGN.md.
func ExtSybilAttack(c Config) (SybilResult, error) {
	c = c.normalized()
	scale := c.EmpiricalScale
	if scale < 4 {
		scale = 4 // the sweep repeats per sybil level; keep it affordable
	}
	out := SybilResult{TopK: c.TopK}
	for _, sybils := range []int{0, 25, 50, 100, 200} {
		sc := twittersim.Small("Ukraine", scale)
		sc.Sybils = sybils * 4 / scale // scale the attack with the dataset
		if sybils > 0 && sc.Sybils == 0 {
			sc.Sybils = 1
		}
		sc.SybilTargets = 10
		point := SybilPoint{Sybils: sc.Sybils, Scores: map[string]grader.Score{}}
		for seed := 0; seed < c.EmpiricalSeeds; seed++ {
			rng := randutil.New(c.Seed + int64(31*seed+sybils))
			w, err := twittersim.Generate(sc, rng)
			if err != nil {
				return SybilResult{}, err
			}
			msgs := make([]apollo.Message, len(w.Tweets))
			for i, t := range w.Tweets {
				msgs[i] = apollo.Message{Source: t.Source, Time: int64(t.ID), Text: t.Text}
			}
			in := apollo.Input{NumSources: sc.Sources + sc.Sybils, Messages: msgs, Graph: w.Graph}
			for _, alg := range baselines.All(c.Seed + int64(seed)) {
				pipe, err := apollo.RunContext(c.Ctx, in, alg, apollo.Options{TopK: c.TopK})
				if err != nil {
					return SybilResult{}, fmt.Errorf("eval: sybil %s: %w", alg.Name(), err)
				}
				labels, err := grader.Grade(pipe.MessageAssertion, w.Tweets, w.Kinds)
				if err != nil {
					return SybilResult{}, err
				}
				score, err := grader.ScoreTopK(pipe.Ranked, labels)
				if err != nil {
					return SybilResult{}, err
				}
				agg := point.Scores[alg.Name()]
				agg.True += score.True
				agg.False += score.False
				agg.Opinion += score.Opinion
				point.Scores[alg.Name()] = agg
			}
		}
		out.Points = append(out.Points, point)
	}
	return out, nil
}

// Render writes the sybil sweep as a table.
func (r SybilResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Extension: top-%d accuracy under a coordinated sybil attack (Ukraine)\n", r.TopK); err != nil {
		return err
	}
	header := append([]string{"sybils"}, EmpiricalAlgNames...)
	t := &table{header: header}
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%d", p.Sybils)}
		for _, a := range EmpiricalAlgNames {
			row = append(row, f3(p.Scores[a].Accuracy()))
		}
		t.add(row...)
	}
	return t.write(w)
}
