package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"runtime"
	"time"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/model"
	"depsense/internal/randutil"
)

// BenchHotScale sizes one benchhot dataset: Claims random source-assertion
// claims (about a third dependent) plus Claims/4 silent-dependent marks,
// scattered over a Sources × Assertions grid.
type BenchHotScale struct {
	Name       string `json:"name"`
	Sources    int    `json:"sources"`
	Assertions int    `json:"assertions"`
	Claims     int    `json:"claims"`
}

// BenchHotOptions sizes the hot-path kernel benchmark. The zero value
// selects the acceptance scales: the paper's Table III Twitter trace
// (5403 × 3703, 7192 claims) and the same shape at 10× — the regime where
// the dense kernel's O(n·m) grid scan is ~10^4 times more cell visits than
// the sparse kernel's nonzeros.
type BenchHotOptions struct {
	// Scales lists the dataset shapes to measure (default Table III and
	// 10× Table III).
	Scales []BenchHotScale
	// StepIters is how many isolated E-steps (and M-steps) each rep times
	// (default 3).
	StepIters int
	// FitIters fixes the full-fit case's EM iteration count (default 3).
	FitIters int
	// Reps is how many times each case runs; the fastest rep is recorded
	// (default 2).
	Reps int
	// Clock stamps the report's GeneratedAt; nil means time.Now. The
	// timings themselves always read the wall clock — they measure it.
	Clock func() time.Time
}

func (o BenchHotOptions) normalized() BenchHotOptions {
	if len(o.Scales) == 0 {
		o.Scales = []BenchHotScale{
			{Name: "table3", Sources: 5403, Assertions: 3703, Claims: 7192},
			{Name: "table3x10", Sources: 54030, Assertions: 37030, Claims: 71920},
		}
	}
	if o.StepIters <= 0 {
		o.StepIters = 3
	}
	if o.FitIters <= 0 {
		o.FitIters = 3
	}
	if o.Reps <= 0 {
		o.Reps = 2
	}
	return o
}

// BenchHotCase is one (scale, hot path) measurement: the same work run
// under the dense-reference kernel and the production sparse kernel,
// single-threaded.
type BenchHotCase struct {
	// Scale names the BenchHotScale this case ran on.
	Scale string `json:"scale"`
	// Name identifies the hot path: estep, mstep, or fit.
	Name string `json:"name"`
	// DenseSeconds / SparseSeconds are the fastest wall-clock times over
	// the reps for each kernel.
	DenseSeconds  float64 `json:"dense_seconds"`
	SparseSeconds float64 `json:"sparse_seconds"`
	// Speedup is DenseSeconds / SparseSeconds.
	Speedup float64 `json:"speedup"`
	// Identical reports whether the two kernels' numeric outputs matched
	// bit for bit — the dense-reference contract (DESIGN.md §13).
	Identical bool `json:"identical"`
}

// BenchHotReport is the machine-readable output of the kernel benchmark,
// written as BENCH_hotpath.json by cmd/experiments.
type BenchHotReport struct {
	// GOMAXPROCS and NumCPU record the host; every case itself runs
	// single-threaded (Workers = 1).
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// GeneratedAt is the RFC 3339 wall-clock time of the run.
	GeneratedAt string `json:"generated_at"`
	// StepIters / FitIters echo the per-case work so the raw seconds are
	// interpretable.
	StepIters int             `json:"step_iters"`
	FitIters  int             `json:"fit_iters"`
	Scales    []BenchHotScale `json:"scales"`
	Cases     []BenchHotCase  `json:"cases"`
}

// BenchHot measures the estimator's hot paths — the E-step, the M-step, and
// a full fixed-iteration EM-Ext fit — under the production sparse kernel
// against the dense-reference kernel, single-threaded, on Twitter-sparse
// datasets. Each case also re-verifies the dense-reference contract: the
// two kernels' outputs must be bit-identical (see DESIGN.md §13; the
// kernelequiv differential suite is the exhaustive check, this is the
// at-scale spot check).
func BenchHot(c Config, o BenchHotOptions) (BenchHotReport, error) {
	c = c.normalized()
	o = o.normalized()
	clock := o.Clock
	if clock == nil {
		clock = time.Now // the injectable default, not a bare read
	}
	rep := BenchHotReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: clock().UTC().Format(time.RFC3339),
		StepIters:   o.StepIters,
		FitIters:    o.FitIters,
		Scales:      o.Scales,
	}

	for _, sc := range o.Scales {
		ds, err := benchHotDataset(sc, c.Seed)
		if err != nil {
			return rep, fmt.Errorf("eval: benchhot %s: %w", sc.Name, err)
		}
		init := model.InformedInitParams(randutil.New(c.Seed+1), sc.Sources)

		// stepOutput freezes everything a step sequence computed, so the
		// kernels' outputs can be compared bit for bit.
		type stepOutput struct {
			LL     float64
			Post   []float64
			Params *model.Params
		}
		type benchCase struct {
			name string
			run  func(k core.Kernel) (any, error)
		}
		cases := []benchCase{
			{"estep", func(k core.Kernel) (any, error) {
				st, err := core.NewKernelStepper(ds, core.VariantExt, init, core.Options{Kernel: k, Workers: 1})
				if err != nil {
					return nil, err
				}
				var ll float64
				for it := 0; it < o.StepIters; it++ {
					ll = st.EStep()
				}
				return stepOutput{LL: ll, Post: st.Posterior()}, nil
			}},
			{"mstep", func(k core.Kernel) (any, error) {
				st, err := core.NewKernelStepper(ds, core.VariantExt, init, core.Options{Kernel: k, Workers: 1})
				if err != nil {
					return nil, err
				}
				ll := st.EStep() // populate the posteriors the M-step reads
				for it := 0; it < o.StepIters; it++ {
					st.MStep()
				}
				return stepOutput{LL: ll, Params: st.Params()}, nil
			}},
			{"fit", func(k core.Kernel) (any, error) {
				return core.RunCtx(c.Ctx, ds, core.VariantExt, core.Options{
					Seed: c.Seed, MaxIters: o.FitIters, Tol: 1e-300,
					DepMode: core.DepModeJoint, Kernel: k, Workers: 1,
				})
			}},
		}

		for _, bc := range cases {
			cse := BenchHotCase{Scale: sc.Name, Name: bc.name}
			var denseOut, sparseOut any
			for _, k := range []core.Kernel{core.KernelDense, core.KernelSparse} {
				var best time.Duration
				var out any
				for r := 0; r < o.Reps; r++ {
					start := time.Now() //lint:allow seedsource wall-clock timing measurement: this benchmark's output IS elapsed seconds
					v, err := bc.run(k)
					if err != nil {
						return rep, fmt.Errorf("eval: benchhot %s %s kernel=%v: %w", sc.Name, bc.name, k, err)
					}
					if d := time.Since(start); r == 0 || d < best {
						best = d
					}
					out = v
				}
				if k == core.KernelDense {
					cse.DenseSeconds = best.Seconds()
					denseOut = out
				} else {
					cse.SparseSeconds = best.Seconds()
					sparseOut = out
				}
			}
			cse.Identical = reflect.DeepEqual(denseOut, sparseOut)
			if cse.SparseSeconds > 0 {
				cse.Speedup = cse.DenseSeconds / cse.SparseSeconds
			}
			rep.Cases = append(rep.Cases, cse)
		}
	}
	return rep, nil
}

// benchHotDataset scatters sc.Claims claims (35% dependent) and sc.Claims/4
// silent-dependent marks uniformly over the grid, drawing nonzeros directly
// — O(nnz) generation, never an n×m scan, so the 10× scale builds in
// milliseconds.
func benchHotDataset(sc BenchHotScale, seed int64) (*claims.Dataset, error) {
	marks := sc.Claims + sc.Claims/4
	if sc.Sources <= 0 || sc.Assertions <= 0 || marks > sc.Sources*sc.Assertions/2 {
		return nil, fmt.Errorf("scale %q is not sparse: %d marks on a %d×%d grid",
			sc.Name, marks, sc.Sources, sc.Assertions)
	}
	rng := randutil.New(seed)
	b := claims.NewBuilder(sc.Sources, sc.Assertions)
	taken := make(map[[2]int]bool, marks)
	draw := func() (int, int) {
		for {
			i, j := rng.Intn(sc.Sources), rng.Intn(sc.Assertions)
			if !taken[[2]int{i, j}] {
				taken[[2]int{i, j}] = true
				return i, j
			}
		}
	}
	for k := 0; k < sc.Claims; k++ {
		i, j := draw()
		b.AddClaim(i, j, rng.Float64() < 0.35)
	}
	for k := 0; k < sc.Claims/4; k++ {
		i, j := draw()
		b.MarkSilentDependent(i, j)
	}
	return b.Build()
}

// MinSpeedup returns the smallest dense/sparse speedup across all cases,
// the number the CI gate compares against: the sparse kernel must never be
// meaningfully slower than the dense reference, even on small smoke scales
// where both are fast.
func (r BenchHotReport) MinSpeedup() float64 {
	min := math.Inf(1)
	for _, c := range r.Cases {
		if c.Speedup < min {
			min = c.Speedup
		}
	}
	if len(r.Cases) == 0 {
		return 0
	}
	return min
}

// AllIdentical reports whether every case's kernels agreed bit for bit.
func (r BenchHotReport) AllIdentical() bool {
	for _, c := range r.Cases {
		if !c.Identical {
			return false
		}
	}
	return true
}

// Render writes the benchmark as a table.
func (r BenchHotReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "hot-path kernels, dense reference vs production sparse, single-threaded (GOMAXPROCS=%d, NumCPU=%d)\n",
		r.GOMAXPROCS, r.NumCPU); err != nil {
		return err
	}
	t := &table{header: []string{"scale", "case", "dense s", "sparse s", "speedup", "identical"}}
	for _, c := range r.Cases {
		t.add(c.Scale, c.Name, fmt.Sprintf("%.4f", c.DenseSeconds), fmt.Sprintf("%.4f", c.SparseSeconds),
			fmt.Sprintf("%.1f", c.Speedup), fmt.Sprintf("%t", c.Identical))
	}
	return t.write(w)
}

// WriteJSON writes the report as indented JSON.
func (r BenchHotReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
