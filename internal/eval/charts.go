package eval

import (
	"depsense/internal/plot"
)

// Chart renders the bound-precision sweep (Figs. 3-5) as exact-vs-approx
// curves.
func (s BoundSeries) Chart() *plot.Chart {
	exact := plot.Series{Name: "exact"}
	approx := plot.Series{Name: "approx (Gibbs)"}
	for _, p := range s.Points {
		exact.X = append(exact.X, p.X)
		exact.Y = append(exact.Y, p.Exact)
		approx.X = append(approx.X, p.X)
		approx.Y = append(approx.Y, p.Approx)
	}
	return &plot.Chart{
		Title:  s.Label,
		XLabel: s.XName,
		YLabel: "error bound",
		Series: []plot.Series{exact, approx},
	}
}

// TimingChart renders the computation-time comparison (Fig. 6).
func (s BoundSeries) TimingChart() *plot.Chart {
	exact := plot.Series{Name: "exact"}
	approx := plot.Series{Name: "approx (Gibbs)"}
	for _, p := range s.Points {
		exact.X = append(exact.X, p.X)
		exact.Y = append(exact.Y, p.ExactSeconds)
		approx.X = append(approx.X, p.X)
		approx.Y = append(approx.Y, p.ApproxSeconds)
	}
	return &plot.Chart{
		Title:  "Fig 6: bound computation time",
		XLabel: s.XName,
		YLabel: "seconds per run",
		Series: []plot.Series{exact, approx},
	}
}

// Chart renders the estimator sweep (Figs. 7-10) as one accuracy curve per
// algorithm, y fixed to [0, 1] as in the paper's figures.
func (s EstimatorSeries) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  s.Label,
		XLabel: s.XName,
		YLabel: "estimation accuracy",
		YMin:   0.0001, // effectively 0; a literal 0 pair means "auto"
		YMax:   1,
	}
	for _, a := range estimatorAlgNames {
		series := plot.Series{Name: a}
		for _, p := range s.Points {
			series.X = append(series.X, p.X)
			series.Y = append(series.Y, p.ByAlg[a].Accuracy)
		}
		c.Series = append(c.Series, series)
	}
	return c
}

// Chart renders the empirical evaluation (Fig. 11) as one curve per
// algorithm across the five datasets (x = dataset index, in Table III
// order).
func (r EmpiricalResult) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  "Fig 11: empirical top-K accuracy (datasets in Table III order)",
		XLabel: "dataset index",
		YLabel: "#True / top-K",
		YMin:   0.0001,
		YMax:   1,
	}
	for _, a := range EmpiricalAlgNames {
		series := plot.Series{Name: a}
		for i, row := range r.Rows {
			series.X = append(series.X, float64(i+1))
			series.Y = append(series.Y, row.Scores[a].Accuracy())
		}
		c.Series = append(c.Series, series)
	}
	return c
}
