package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"depsense/internal/core"
	"depsense/internal/qual"
	"depsense/internal/randutil"
	"depsense/internal/stream"
	"depsense/internal/twittersim"
)

// BenchQualOptions sizes the estimation-quality overhead benchmark. The
// zero value selects the acceptance-scale defaults: the Ukraine scenario at
// 1/10 volume, batches of 64, three repetitions.
type BenchQualOptions struct {
	// Scenario names the twittersim preset feeding the stream
	// (default "Ukraine").
	Scenario string
	// Scale is the scenario downscale divisor (default 10).
	Scale int
	// Batch is the claim batch size per refit (default 64).
	Batch int
	// Reps is how many times the whole stream is replayed; fit and
	// monitor times are summed across repetitions (default 3).
	Reps int
	// BoundEvery forwards to qual.Options.BoundEvery. The default -1
	// keeps bound tracking out of the measurement: the bound is a
	// separately budgeted, amortized evaluation, while the gate is about
	// the per-refit verdict that rides every fit (default -1).
	BoundEvery int
	// Clock stamps the report's GeneratedAt; nil means time.Now. The
	// overhead measurements always read the wall clock — they measure it.
	Clock func() time.Time
}

func (o BenchQualOptions) normalized() BenchQualOptions {
	if o.Scenario == "" {
		o.Scenario = "Ukraine"
	}
	if o.Scale <= 0 {
		o.Scale = 10
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.BoundEvery == 0 {
		o.BoundEvery = -1
	}
	return o
}

// BenchQualReport is the machine-readable output of the quality-monitor
// overhead benchmark, written as BENCH_quality.json by cmd/experiments.
type BenchQualReport struct {
	// GOMAXPROCS and NumCPU record the machine the timings were taken on.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// GeneratedAt is the RFC 3339 wall-clock time of the run.
	GeneratedAt string `json:"generated_at"`

	// Scenario / Scale / Batch / Reps echo the workload.
	Scenario string `json:"scenario"`
	Scale    int    `json:"scale"`
	Batch    int    `json:"batch"`
	Reps     int    `json:"reps"`

	// Ticks is the total number of verdicts produced (refits × reps);
	// Sources / Assertions / Claims the final dataset shape.
	Ticks      int `json:"ticks"`
	Sources    int `json:"sources"`
	Assertions int `json:"assertions"`
	Claims     int `json:"claims"`

	// FitMillis is the total time spent inside AddBatch minus the
	// monitor's share; MonitorMillis is the total time spent inside
	// ObserveRefit (calibration + drift + spill-free verdict assembly).
	// Overhead is MonitorMillis / FitMillis — the gated ratio.
	FitMillis     float64 `json:"fit_ms"`
	MonitorMillis float64 `json:"monitor_ms"`
	Overhead      float64 `json:"overhead"`

	// PerTickMicros is the mean monitor cost per refit.
	PerTickMicros float64 `json:"per_tick_us"`
	// Alarms counts detector firings over the clean seeded stream
	// (cold-start settling; informational, not gated).
	Alarms int `json:"alarms"`
}

// Check is the CI gate: the monitor must cost at most maxOverhead of the
// fit it rides (e.g. 0.05 = 5%).
func (r BenchQualReport) Check(maxOverhead float64) error {
	if r.Ticks == 0 {
		return fmt.Errorf("eval: benchqual: no refits measured")
	}
	if r.Overhead > maxOverhead {
		return fmt.Errorf("eval: benchqual: monitor overhead %.4f (%.2f ms over %.2f ms of fitting) exceeds the allowed %.4f",
			r.Overhead, r.MonitorMillis, r.FitMillis, maxOverhead)
	}
	return nil
}

// BenchQual measures what the estimation-quality monitor costs relative to
// the refits it observes: a seeded twittersim stream is replayed through
// stream.Estimator with a qual.Monitor on OnRefit, every ObserveRefit is
// timed separately from the batch it rides, and the report relates the two.
// The monitor runs synchronously inside AddBatch, so fit time is the batch
// total minus the monitor's share.
func BenchQual(c Config, o BenchQualOptions) (BenchQualReport, error) {
	c = c.normalized()
	o = o.normalized()
	clock := o.Clock
	if clock == nil {
		clock = time.Now // the injectable default, not a bare read
	}
	rep := BenchQualReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: clock().UTC().Format(time.RFC3339),
		Scenario:    o.Scenario,
		Scale:       o.Scale,
		Batch:       o.Batch,
		Reps:        o.Reps,
	}

	w, err := twittersim.Generate(twittersim.Small(o.Scenario, o.Scale), randutil.New(c.Seed))
	if err != nil {
		return rep, fmt.Errorf("eval: benchqual scenario: %w", err)
	}
	kinds := w.Kinds
	truth := func(j int) (bool, bool) {
		if j < 0 || j >= len(kinds) || kinds[j] == twittersim.KindOpinion {
			return false, false
		}
		return kinds[j] == twittersim.KindTrue, true
	}
	events := w.Events()

	var batchTime, monitorTime time.Duration
	for run := 0; run < o.Reps; run++ {
		m := qual.NewMonitor(qual.Options{
			BoundEvery: o.BoundEvery,
			BoundSeed:  c.Seed,
			Workers:    c.Workers,
			Truth:      truth,
		})
		var obsErr error
		est := stream.New(stream.Options{
			EM: core.Options{Seed: c.Seed, Workers: c.Workers},
			OnRefit: func(ctx context.Context, ev stream.RefitEvent) {
				t0 := time.Now() //lint:allow seedsource wall-clock timing measurement: this benchmark's output IS monitor overhead
				_, err := m.ObserveRefit(ctx, qual.Refit{Result: ev.Result, Dataset: ev.Dataset, Edges: ev.Edges})
				monitorTime += time.Since(t0)
				if err != nil && obsErr == nil {
					obsErr = err
				}
			},
		})
		for at := 0; at < len(events); at += o.Batch {
			end := min(at+o.Batch, len(events))
			for _, tw := range w.Tweets[at:end] {
				if tw.RetweetOf >= 0 {
					orig := w.Tweets[tw.RetweetOf]
					if orig.Source != tw.Source {
						if err := est.ObserveFollow(tw.Source, orig.Source); err != nil {
							return rep, fmt.Errorf("eval: benchqual follow: %w", err)
						}
					}
				}
			}
			t0 := time.Now() //lint:allow seedsource wall-clock timing measurement: this benchmark's output IS monitor overhead
			if _, err := est.AddBatch(events[at:end]); err != nil {
				return rep, fmt.Errorf("eval: benchqual batch at %d: %w", at, err)
			}
			batchTime += time.Since(t0)
		}
		if obsErr != nil {
			return rep, fmt.Errorf("eval: benchqual observe: %w", obsErr)
		}
		rep.Ticks += m.Ticks()
		rep.Alarms += len(m.Alarms())
		if last := m.Latest(); last != nil {
			rep.Sources, rep.Assertions, rep.Claims = last.Sources, last.Assertions, last.Claims
		}
	}

	fit := batchTime - monitorTime
	rep.FitMillis = fit.Seconds() * 1000
	rep.MonitorMillis = monitorTime.Seconds() * 1000
	if fit > 0 {
		rep.Overhead = monitorTime.Seconds() / fit.Seconds()
	}
	if rep.Ticks > 0 {
		rep.PerTickMicros = monitorTime.Seconds() * 1e6 / float64(rep.Ticks)
	}
	return rep, nil
}

// Render writes the benchmark as a table.
func (r BenchQualReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "quality-monitor overhead (GOMAXPROCS=%d, NumCPU=%d)\n", r.GOMAXPROCS, r.NumCPU); err != nil {
		return err
	}
	t := &table{header: []string{"metric", "value"}}
	t.add("workload", fmt.Sprintf("%s 1/%d, batch %d, %d rep(s)", r.Scenario, r.Scale, r.Batch, r.Reps))
	t.add("dataset", fmt.Sprintf("%d sources, %d assertions, %d claims", r.Sources, r.Assertions, r.Claims))
	t.add("refits observed", fmt.Sprintf("%d", r.Ticks))
	t.add("fit time", fmt.Sprintf("%.2f ms", r.FitMillis))
	t.add("monitor time", fmt.Sprintf("%.2f ms (%.1f µs/refit)", r.MonitorMillis, r.PerTickMicros))
	t.add("overhead", fmt.Sprintf("%.4f", r.Overhead))
	t.add("alarms", fmt.Sprintf("%d", r.Alarms))
	return t.write(w)
}

// WriteJSON writes the report as indented JSON.
func (r BenchQualReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
