package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"depsense/internal/bound"
	"depsense/internal/core"
	"depsense/internal/randutil"
	"depsense/internal/synthetic"
)

// BenchParallelOptions sizes the parallel-speedup benchmark. The zero value
// selects the acceptance-scale defaults (EM on a 500×2000 world, exact bound
// at n = 20).
type BenchParallelOptions struct {
	// EMSources × EMAssertions sizes the EM benchmark world (default
	// 500 × 2000).
	EMSources    int
	EMAssertions int
	// EMIters fixes the EM iteration count so every workers level does the
	// same work (default 5).
	EMIters int
	// Restarts sizes the restart fan-out benchmark (default 4).
	Restarts int
	// ExactN is the exact-bound column width, 2^ExactN patterns (default 20).
	ExactN int
	// Chains is the Gibbs chain count of the approx benchmark (default 4).
	Chains int
	// Sweeps is the total Gibbs sweep budget (default 20000).
	Sweeps int
	// Reps is how many times each case runs; the fastest rep is recorded
	// (default 3).
	Reps int
	// Workers lists the parallelism levels to benchmark (default
	// 1, 2, 4, GOMAXPROCS deduplicated).
	Workers []int
	// Clock stamps the report's GeneratedAt; nil means time.Now. The
	// speedup measurements themselves always read the wall clock — they
	// measure it.
	Clock func() time.Time
}

func (o BenchParallelOptions) normalized() BenchParallelOptions {
	if o.EMSources <= 0 {
		o.EMSources = 500
	}
	if o.EMAssertions <= 0 {
		o.EMAssertions = 2000
	}
	if o.EMIters <= 0 {
		o.EMIters = 5
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
	if o.ExactN <= 0 {
		o.ExactN = 20
	}
	if o.Chains <= 0 {
		o.Chains = 4
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 20000
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if len(o.Workers) == 0 {
		seen := map[int]bool{}
		for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			if w >= 1 && !seen[w] {
				seen[w] = true
				o.Workers = append(o.Workers, w)
			}
		}
	}
	return o
}

// BenchParallelCase is one (benchmark, workers) measurement.
type BenchParallelCase struct {
	// Name identifies the hot path: em-estep, em-restarts, exact-bound, or
	// gibbs-chains.
	Name string `json:"name"`
	// Workers is the parallelism level of this measurement.
	Workers int `json:"workers"`
	// Seconds is the fastest wall-clock time over the benchmark's reps.
	Seconds float64 `json:"seconds"`
	// Speedup is the ratio of the same case's Workers=1 time to this time.
	Speedup float64 `json:"speedup"`
	// Identical reports whether this run's numeric output matched the
	// Workers=1 run bit for bit — the determinism contract under test.
	Identical bool `json:"identical"`
}

// BenchParallelReport is the machine-readable output of the parallel
// benchmark, written as BENCH_parallel.json by cmd/experiments.
type BenchParallelReport struct {
	// GOMAXPROCS and NumCPU record the machine the speedups were measured
	// on: on a single-core host every Speedup is necessarily about 1.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// GeneratedAt is the RFC 3339 wall-clock time of the run.
	GeneratedAt string              `json:"generated_at"`
	Cases       []BenchParallelCase `json:"cases"`
}

// BenchParallel measures the wall-clock scaling of every parallel hot path —
// the EM E/M block sharding, the EM restart fan-out, the exact-bound block
// enumeration, and the multi-chain Gibbs approximation — across worker
// counts, verifying at each level that the output is bit-for-bit identical
// to the serial run.
func BenchParallel(c Config, o BenchParallelOptions) (BenchParallelReport, error) {
	c = c.normalized()
	o = o.normalized()
	clock := o.Clock
	if clock == nil {
		clock = time.Now // the injectable default, not a bare read
	}
	rep := BenchParallelReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: clock().UTC().Format(time.RFC3339),
	}

	emCfg := synthetic.DefaultConfig()
	emCfg.Sources = o.EMSources
	emCfg.Assertions = o.EMAssertions
	world, err := synthetic.Generate(emCfg, randutil.New(c.Seed))
	if err != nil {
		return rep, fmt.Errorf("eval: benchpar world: %w", err)
	}

	exactCol := randomColumn(o.ExactN, randutil.New(c.Seed+1))

	type benchCase struct {
		name string
		run  func(workers int) (any, error)
	}
	cases := []benchCase{
		{"em-estep", func(workers int) (any, error) {
			return core.RunCtx(c.Ctx, world.Dataset, core.VariantExt, core.Options{
				Seed: c.Seed, MaxIters: o.EMIters, Tol: 1e-300, Workers: workers,
			})
		}},
		{"em-restarts", func(workers int) (any, error) {
			return core.RunCtx(c.Ctx, world.Dataset, core.VariantExt, core.Options{
				Seed: c.Seed, MaxIters: o.EMIters, Tol: 1e-300,
				Restarts: o.Restarts, Workers: workers,
			})
		}},
		{"exact-bound", func(workers int) (any, error) {
			return bound.ExactOpts(c.Ctx, exactCol, bound.ExactOptions{Workers: workers})
		}},
		{"gibbs-chains", func(workers int) (any, error) {
			return bound.ApproxContext(c.Ctx, exactCol, bound.ApproxOptions{
				MaxSweeps: o.Sweeps, Chains: o.Chains, Workers: workers,
			}, randutil.New(c.Seed+2))
		}},
	}

	for _, bc := range cases {
		var baseline any
		var baseSeconds float64
		for _, w := range o.Workers {
			var best time.Duration
			var out any
			for r := 0; r < o.Reps; r++ {
				start := time.Now() //lint:allow seedsource wall-clock timing measurement: this benchmark's output IS elapsed seconds
				v, err := bc.run(w)
				if err != nil {
					return rep, fmt.Errorf("eval: benchpar %s workers=%d: %w", bc.name, w, err)
				}
				if d := time.Since(start); r == 0 || d < best {
					best = d
				}
				out = v
			}
			cse := BenchParallelCase{Name: bc.name, Workers: w, Seconds: best.Seconds()}
			if baseline == nil {
				baseline = out
				baseSeconds = cse.Seconds
				cse.Identical = true
			} else {
				cse.Identical = reflect.DeepEqual(baseline, out)
			}
			if cse.Seconds > 0 {
				cse.Speedup = baseSeconds / cse.Seconds
			}
			rep.Cases = append(rep.Cases, cse)
		}
	}
	return rep, nil
}

// randomColumn builds a deterministic bound column with heterogeneous
// per-source claim probabilities away from the degenerate edges.
func randomColumn(n int, rng *rand.Rand) bound.Column {
	col := bound.Column{P1: make([]float64, n), P0: make([]float64, n), Z: 0.5}
	for i := 0; i < n; i++ {
		col.P1[i] = randutil.Uniform(rng, 0.55, 0.9)
		col.P0[i] = randutil.Uniform(rng, 0.1, 0.45)
	}
	return col
}

// Render writes the benchmark as a table.
func (r BenchParallelReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "parallel speedups (GOMAXPROCS=%d, NumCPU=%d)\n", r.GOMAXPROCS, r.NumCPU); err != nil {
		return err
	}
	t := &table{header: []string{"case", "workers", "seconds", "speedup", "identical"}}
	for _, c := range r.Cases {
		t.add(c.Name, fmt.Sprintf("%d", c.Workers), fmt.Sprintf("%.4f", c.Seconds),
			fmt.Sprintf("%.2f", c.Speedup), fmt.Sprintf("%t", c.Identical))
	}
	return t.write(w)
}

// WriteJSON writes the report as indented JSON.
func (r BenchParallelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
