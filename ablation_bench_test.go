package depsense

// Ablation benchmarks for the design choices DESIGN.md calls out: EM-Ext's
// dependent-channel mode, M-step smoothing, initialization strategy, the
// Gibbs chain length behind the approximate bound, and the Apollo
// clustering threshold. Each reports its quality metric via
// b.ReportMetric so a -bench run doubles as an ablation table.

import (
	"fmt"
	"math"
	"testing"

	"depsense/internal/apollo"
	"depsense/internal/bound"
	"depsense/internal/cluster"
	"depsense/internal/core"
	"depsense/internal/grader"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
	"depsense/internal/twittersim"
)

// BenchmarkAblationDepMode compares EM-Ext's joint and plug-in strategies
// on dense simulation data (joint should win) — the regime switch the
// estimator performs automatically.
func BenchmarkAblationDepMode(b *testing.B) {
	cfg := synthetic.EstimatorConfig()
	cfg.Sources = 100
	cfg.Assertions = 100
	for _, mode := range []struct {
		name string
		mode core.DepMode
	}{{"joint", core.DepModeJoint}, {"plugin", core.DepModePlugin}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var acc stats.Series
			for i := 0; i < b.N; i++ {
				w, err := synthetic.Generate(cfg, randutil.New(int64(300+i)))
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Run(w.Dataset, core.VariantExt, core.Options{
					Seed: int64(i), DepMode: mode.mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				cl, err := stats.Classify(res.Decisions(0.5), w.Truth)
				if err != nil {
					b.Fatal(err)
				}
				acc.Add(cl.Accuracy)
			}
			b.ReportMetric(acc.Mean(), "acc")
		})
	}
}

// BenchmarkAblationSmoothing sweeps the M-step's empirical-Bayes
// pseudo-count for the independent channel (dependent channel fixed at its
// default).
func BenchmarkAblationSmoothing(b *testing.B) {
	cfg := synthetic.EstimatorConfig()
	for _, smooth := range []float64{-1, 1, 2, 8, 32} {
		smooth := smooth
		name := fmt.Sprintf("s=%g", smooth)
		if smooth < 0 {
			name = "s=off"
		}
		b.Run(name, func(b *testing.B) {
			var acc stats.Series
			for i := 0; i < b.N; i++ {
				w, err := synthetic.Generate(cfg, randutil.New(int64(400+i)))
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Run(w.Dataset, core.VariantExt, core.Options{
					Seed: int64(i), Smoothing: smooth,
				})
				if err != nil {
					b.Fatal(err)
				}
				cl, err := stats.Classify(res.Decisions(0.5), w.Truth)
				if err != nil {
					b.Fatal(err)
				}
				acc.Add(cl.Accuracy)
			}
			b.ReportMetric(acc.Mean(), "acc")
		})
	}
}

// BenchmarkAblationInit compares EM-Ext initialization strategies,
// including the literal "random probability" of Algorithm 2, which is
// subject to label switching.
func BenchmarkAblationInit(b *testing.B) {
	cfg := synthetic.EstimatorConfig()
	for _, init := range []struct {
		name string
		mode core.InitMode
	}{
		{"staged", core.InitStaged},
		{"vote", core.InitVote},
		{"informed", core.InitInformed},
		{"random", core.InitRandom},
	} {
		init := init
		b.Run(init.name, func(b *testing.B) {
			var acc stats.Series
			for i := 0; i < b.N; i++ {
				w, err := synthetic.Generate(cfg, randutil.New(int64(500+i)))
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Run(w.Dataset, core.VariantExt, core.Options{
					Seed: int64(i), InitMode: init.mode, DepMode: core.DepModeJoint,
				})
				if err != nil {
					b.Fatal(err)
				}
				cl, err := stats.Classify(res.Decisions(0.5), w.Truth)
				if err != nil {
					b.Fatal(err)
				}
				acc.Add(cl.Accuracy)
			}
			b.ReportMetric(acc.Mean(), "acc")
		})
	}
}

// BenchmarkAblationGibbsSweeps sweeps the approximate bound's chain length
// against exact enumeration, reporting the mean absolute error.
func BenchmarkAblationGibbsSweeps(b *testing.B) {
	cfg := synthetic.DefaultConfig() // n = 20
	w, err := synthetic.Generate(cfg, randutil.New(77))
	if err != nil {
		b.Fatal(err)
	}
	col, err := bound.NewColumn(w.TrueParams, w.Dataset.DependencyColumn(0))
	if err != nil {
		b.Fatal(err)
	}
	exact, err := bound.Exact(col)
	if err != nil {
		b.Fatal(err)
	}
	for _, sweeps := range []int{100, 500, 2000, 10000, 40000} {
		sweeps := sweeps
		b.Run(fmt.Sprintf("sweeps=%d", sweeps), func(b *testing.B) {
			rng := randutil.New(7)
			var diff stats.Series
			for i := 0; i < b.N; i++ {
				res, err := bound.Approx(col, bound.ApproxOptions{
					MaxSweeps: sweeps, Tol: 1e-12, // disable early exit: measure the budget
				}, rng)
				if err != nil {
					b.Fatal(err)
				}
				diff.Add(math.Abs(res.Err - exact.Err))
			}
			b.ReportMetric(diff.Mean(), "abs-err")
		})
	}
}

// BenchmarkAblationClusterThreshold sweeps the Apollo clustering threshold
// and reports cluster count inflation and EM-Ext's graded accuracy.
func BenchmarkAblationClusterThreshold(b *testing.B) {
	sc := twittersim.Small("Ukraine", 8)
	for _, th := range []float64{0.3, 0.4, 0.5, 0.6, 0.7} {
		th := th
		b.Run(fmt.Sprintf("jaccard=%.1f", th), func(b *testing.B) {
			var acc, clusters stats.Series
			for i := 0; i < b.N; i++ {
				w, err := twittersim.Generate(sc, randutil.New(int64(600+i)))
				if err != nil {
					b.Fatal(err)
				}
				msgs := make([]apollo.Message, len(w.Tweets))
				for k, t := range w.Tweets {
					msgs[k] = apollo.Message{Source: t.Source, Time: int64(t.ID), Text: t.Text}
				}
				out, err := apollo.Run(apollo.Input{
					NumSources: sc.Sources, Messages: msgs, Graph: w.Graph,
				}, &core.EMExt{Opts: core.Options{Seed: int64(i)}}, apollo.Options{
					TopK:      100,
					Clusterer: &cluster.Leader{Threshold: th},
				})
				if err != nil {
					b.Fatal(err)
				}
				labels, err := grader.Grade(out.MessageAssertion, w.Tweets, w.Kinds)
				if err != nil {
					b.Fatal(err)
				}
				score, err := grader.ScoreTopK(out.Ranked, labels)
				if err != nil {
					b.Fatal(err)
				}
				acc.Add(score.Accuracy())
				clusters.Add(float64(out.Dataset.M()) / float64(len(w.Kinds)))
			}
			b.ReportMetric(acc.Mean(), "top100-acc")
			b.ReportMetric(clusters.Mean(), "cluster-ratio")
		})
	}
}
