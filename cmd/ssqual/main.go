// Command ssqual inspects estimation-quality spills recorded by the
// serving stack — the quality.jsonl written next to traces.jsonl by a
// quality-monitored ingest pipeline (internal/qual), or a report saved
// from GET /debug/quality — entirely offline.
//
// Usage:
//
//	ssqual [-ece 0.5] [-ticks N] [-check] quality.jsonl [file2.jsonl ...]
//
// For every file it prints the run header (ticks, dataset growth), the
// latest verdict's calibration summary (ECE, disagreement, implied error),
// drift detector state, and the standing bound-versus-empirical
// comparison, followed by every alarm in tick order with its offending
// window. -ticks additionally prints the last N per-tick verdict lines.
// With -check, it exits non-zero when any alarm fired, the latest bound
// comparison has empirical error above the paper's bound, or the latest
// ECE exceeds the -ece threshold — the CI guard form, the quality
// counterpart of sstrace -check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"depsense/internal/mapsort"
	"depsense/internal/qual"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssqual:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssqual", flag.ContinueOnError)
	var (
		eceMax = fs.Float64("ece", 0, "fail -check when the latest ECE exceeds this (0 = no ECE gate)")
		ticks  = fs.Int("ticks", 0, "print the last N per-tick verdict lines (0 = summary only)")
		check  = fs.Bool("check", false, "exit non-zero on alarms, bound exceeded, or ECE above -ece")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: ssqual [-ece 0.5] [-ticks N] [-check] quality.jsonl ...")
	}

	var problems []string
	for _, path := range fs.Args() {
		verdicts, err := qual.ReadFile(path)
		if err != nil {
			return err
		}
		printFile(out, path, verdicts, *ticks, &problems)
		if len(verdicts) == 0 {
			continue
		}
		last := verdicts[len(verdicts)-1]
		for _, v := range verdicts {
			for _, a := range v.Alarms {
				problems = append(problems, fmt.Sprintf("%s: %s alarm at tick %d (stat %.4g > %.4g)",
					path, a.Kind, a.Tick, a.Stat, a.Threshold))
			}
		}
		if b := last.Bound; b != nil && b.Exceeded {
			problems = append(problems, fmt.Sprintf("%s: empirical error %.4g exceeds bound %.4g (tick %d)",
				path, b.Observed, b.Bound, b.Tick))
		}
		if *eceMax > 0 && last.Calibration.ECE > *eceMax {
			problems = append(problems, fmt.Sprintf("%s: latest ECE %.4g exceeds %.4g",
				path, last.Calibration.ECE, *eceMax))
		}
	}
	if *check && len(problems) > 0 {
		return fmt.Errorf("%d problem(s):\n  %s", len(problems), strings.Join(problems, "\n  "))
	}
	return nil
}

// printFile renders one spill: header, latest-verdict summary, alarm list,
// and optionally the per-tick tail.
func printFile(out io.Writer, path string, verdicts []*qual.Verdict, tailTicks int, problems *[]string) {
	if len(verdicts) == 0 {
		fmt.Fprintf(out, "%s: empty spill\n", path)
		return
	}
	first, last := verdicts[0], verdicts[len(verdicts)-1]
	fmt.Fprintf(out, "%s: %d verdict(s), ticks %d..%d, dataset %dx%d -> %dx%d (%d claims)\n",
		path, len(verdicts), first.Tick, last.Tick,
		first.Sources, first.Assertions, last.Sources, last.Assertions, last.Claims)

	c := last.Calibration
	fmt.Fprintf(out, "  calibration vs %s: ece=%.4g disagreement=%.4g implied-error=%.4g (%d/%d labeled)\n",
		c.Reference, c.ECE, c.Disagreement, c.ImpliedError, c.Labeled, c.Assertions)
	if d := last.Drift; d != nil {
		fmt.Fprintf(out, "  drift: %d source detector(s), max stat %.4g (source %d), dependent-fraction %.4g (stat %.4g)",
			d.SourcesTracked, d.MaxStat, d.MaxStatSource, d.DependentFraction, d.DependentStat)
		if d.EdgeRate >= 0 {
			fmt.Fprintf(out, ", edge-rate %.4g (stat %.4g)", d.EdgeRate, d.EdgeStat)
		}
		fmt.Fprintln(out)
	}
	if b := last.Bound; b != nil {
		verdict := "within bound"
		if b.Exceeded {
			verdict = "EXCEEDED"
		}
		fmt.Fprintf(out, "  bound@%d: bound=%.4g (stderr %.4g, %d sweeps) observed=%.4g ratio=%.4g: %s\n",
			b.Tick, b.Bound, b.StdErr, b.Sweeps, b.Observed, b.Ratio, verdict)
	}

	byKind := map[string]int{}
	for _, v := range verdicts {
		for _, a := range v.Alarms {
			byKind[a.Kind]++
			fmt.Fprintf(out, "  ALARM %s tick=%d", a.Kind, a.Tick)
			if a.Source >= 0 {
				fmt.Fprintf(out, " source=%d", a.Source)
			}
			fmt.Fprintf(out, " stat=%.4g threshold=%.4g window[%d..]=%s", a.Stat, a.Threshold, a.StartTick, formatWindow(a.Window))
			if a.TraceID != "" {
				fmt.Fprintf(out, " trace=%s", a.TraceID)
			}
			fmt.Fprintln(out)
		}
	}
	if len(byKind) > 0 {
		fmt.Fprint(out, "  alarms:")
		for _, k := range mapsort.Keys(byKind) {
			fmt.Fprintf(out, " %s=%d", k, byKind[k])
		}
		fmt.Fprintln(out)
	}

	if tailTicks > 0 {
		tail := verdicts
		if len(tail) > tailTicks {
			fmt.Fprintf(out, "  ... %d earlier tick(s)\n", len(tail)-tailTicks)
			tail = tail[len(tail)-tailTicks:]
		}
		for _, v := range tail {
			fmt.Fprintf(out, "  tick %d: M=%d ece=%.4g disagreement=%.4g", v.Tick, v.Assertions, v.Calibration.ECE, v.Calibration.Disagreement)
			if v.Drift != nil {
				fmt.Fprintf(out, " maxStat=%.4g", v.Drift.MaxStat)
			}
			if len(v.Alarms) > 0 {
				fmt.Fprintf(out, " alarms=%d", len(v.Alarms))
			}
			fmt.Fprintln(out)
		}
	}
}

// formatWindow renders an alarm's offending window compactly.
func formatWindow(win []float64) string {
	parts := make([]string, len(win))
	for i, v := range win {
		parts[i] = fmt.Sprintf("%.3g", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
