package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"depsense/internal/qual"
)

// writeSpill marshals verdicts into a quality.jsonl in a temp dir.
func writeSpill(t *testing.T, verdicts []*qual.Verdict) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, v := range verdicts {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), qual.SpillFile)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func cleanVerdicts() []*qual.Verdict {
	return []*qual.Verdict{
		{
			Tick: 0, Sources: 10, Assertions: 40, Claims: 160,
			Calibration: qual.Calibration{Reference: "truth", Assertions: 40, Labeled: 30, ECE: 0.21, Disagreement: 0.30, ImpliedError: 0.12},
			Drift:       &qual.DriftStatus{SourcesTracked: 10, MaxStat: 0.01, MaxStatSource: 3, DependentFraction: 0.2, EdgeRate: -1},
		},
		{
			Tick: 1, Sources: 10, Assertions: 60, Claims: 320,
			Calibration: qual.Calibration{Reference: "truth", Assertions: 60, Labeled: 48, ECE: 0.08, Disagreement: 0.10, ImpliedError: 0.07},
			Drift:       &qual.DriftStatus{SourcesTracked: 10, MaxStat: 0.02, MaxStatSource: 5, DependentFraction: 0.22, EdgeRate: 0.4, EdgeStat: 0.01},
			Bound:       &qual.BoundStatus{Tick: 1, Bound: 0.15, StdErr: 0.01, Sweeps: 200, Observed: 0.10, Ratio: 0.67},
		},
	}
}

func alarmedVerdicts() []*qual.Verdict {
	vs := cleanVerdicts()
	vs = append(vs, &qual.Verdict{
		Tick: 2, Sources: 10, Assertions: 80, Claims: 480,
		Calibration: qual.Calibration{Reference: "truth", Assertions: 80, Labeled: 64, ECE: 0.31, Disagreement: 0.25, ImpliedError: 0.08},
		Drift:       &qual.DriftStatus{SourcesTracked: 10, MaxStat: 0.55, MaxStatSource: 7, DependentFraction: 0.24, EdgeRate: 0.4},
		Bound:       &qual.BoundStatus{Tick: 2, Bound: 0.15, StdErr: 0.01, Sweeps: 200, Observed: 0.25, Ratio: 1.67, Exceeded: true},
		Alarms: []qual.Alarm{{
			Kind: qual.AlarmSourceReliability, Source: 7, Tick: 2,
			Stat: 0.55, Threshold: 0.4, StartTick: 0,
			Window:  []float64{0.8, 0.6, 0.3},
			TraceID: "qual-source-reliability-7-2",
		}},
	})
	return vs
}

func TestCleanSpillSummary(t *testing.T) {
	path := writeSpill(t, cleanVerdicts())
	var out bytes.Buffer
	if err := run([]string{"-check", path}, &out); err != nil {
		t.Fatalf("clean spill failed -check: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"2 verdict(s), ticks 0..1",
		"calibration vs truth: ece=0.08",
		"drift: 10 source detector(s)",
		"edge-rate 0.4",
		"bound@1: bound=0.15",
		"within bound",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "ALARM") {
		t.Errorf("clean spill printed an alarm:\n%s", s)
	}
}

func TestAlarmedSpillCheckFails(t *testing.T) {
	path := writeSpill(t, alarmedVerdicts())

	// Without -check: report, no error.
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("report mode errored: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"ALARM source-reliability tick=2 source=7 stat=0.55 threshold=0.4",
		"window[0..]=[0.8 0.6 0.3]",
		"trace=qual-source-reliability-7-2",
		"alarms: source-reliability=1",
		"EXCEEDED",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}

	// With -check: both the alarm and the bound breach become problems.
	err := run([]string{"-check", path}, &out)
	if err == nil {
		t.Fatal("-check passed an alarmed spill")
	}
	for _, want := range []string{"2 problem(s)", "source-reliability alarm at tick 2", "exceeds bound"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("check error misses %q: %v", want, err)
		}
	}
}

func TestECEGate(t *testing.T) {
	path := writeSpill(t, cleanVerdicts())
	var out bytes.Buffer
	if err := run([]string{"-check", "-ece", "0.5", path}, &out); err != nil {
		t.Fatalf("ece 0.08 failed gate 0.5: %v", err)
	}
	err := run([]string{"-check", "-ece", "0.05", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "exceeds 0.05") {
		t.Fatalf("ece 0.08 passed gate 0.05: %v", err)
	}
}

func TestTicksTail(t *testing.T) {
	path := writeSpill(t, alarmedVerdicts())
	var out bytes.Buffer
	if err := run([]string{"-ticks", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "... 1 earlier tick(s)") {
		t.Errorf("tail misses elision marker:\n%s", s)
	}
	if !strings.Contains(s, "tick 2: M=80") || strings.Contains(s, "tick 0: M=40") {
		t.Errorf("tail window wrong:\n%s", s)
	}
}

func TestUsageAndMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "absent.jsonl")}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
