package main

import (
	"os"
	"path/filepath"
	"testing"

	"depsense/internal/trace"
)

// TestRunOnce drives the binary end to end in batch mode: short seeded
// firehose, persistence and trace spill on, no HTTP. The run must leave a
// final snapshot, a claim log, and well-formed refit traces behind — and a
// second run over the same directory must resume (not refit from scratch)
// and exit cleanly.
func TestRunOnce(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-scenario", "Ukraine",
		"-scale", "60",
		"-seed", "7",
		"-batch", "32",
		"-once",
		"-addr", "",
		"-data", dir,
		"-trace-dir", dir,
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no final snapshot: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "claims.log")); err != nil {
		t.Fatalf("no claim log: %v", err)
	}
	traces, err := trace.ReadFile(filepath.Join(dir, "traces.jsonl"))
	if err != nil {
		t.Fatalf("trace spill unreadable: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("no refit traces spilled")
	}
	firstRun := len(traces)

	// Second run resumes at the committed stream position: the firehose is
	// already exhausted there, so no new batches are fitted.
	if err := run(args); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	traces, err = trace.ReadFile(filepath.Join(dir, "traces.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != firstRun {
		t.Fatalf("resumed run refitted: %d traces, want %d", len(traces), firstRun)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
