// Command ssingest runs the continuous ingestion service: a seeded
// twittersim firehose (the stand-in for a live tweet stream) feeds the
// staged pipeline in internal/ingest, which clusters tweets into
// assertions, refits the streaming estimator per batch, and serves
// continuously refreshed credibility rankings.
//
// Usage:
//
//	ssingest [-scenario Ukraine] [-scale 20] [-seed 1] [-em-seed 1]
//	         [-batch 64] [-interval 0] [-workers 1] [-topk 100]
//	         [-data dir] [-snapshot-every 16] [-addr :8090] [-once]
//	         [-trace-buffer 64] [-trace-dir dir]
//	         [-quality] [-quality-lambda 0.4] [-quality-bound-every 8]
//
// Endpoints on -addr: GET /healthz, /v1/rankings, /statusz, /metrics, and
// the per-refit flight recorder at /debug/runs[/{id}]; -addr "" disables
// the HTTP surface (batch-job mode). -quality attaches the estimation-
// quality monitor (internal/qual): per-refit calibration and drift
// verdicts at /debug/quality, alarm counters on /metrics, and — when
// -trace-dir is set — a quality.jsonl spill next to traces.jsonl for
// offline auditing with ssqual. -interval > 0 paces emission like a
// live stream; 0 replays as fast as the pipeline drains. With -data, every
// batch is committed to an fsynced claim log before it is applied and the
// model is snapshotted periodically, so restarting with the same -data
// (and the same scenario flags) resumes exactly where the previous process
// stopped — killed or not. -once exits when the firehose is exhausted
// (after a final snapshot) instead of idling; the service always shuts
// down on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"depsense/internal/core"
	"depsense/internal/ingest"
	"depsense/internal/qual"
	"depsense/internal/randutil"
	"depsense/internal/stream"
	"depsense/internal/twittersim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssingest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssingest", flag.ContinueOnError)
	var (
		scenario  = fs.String("scenario", "Ukraine", "twittersim preset scenario feeding the firehose")
		scale     = fs.Int("scale", 20, "scenario downscale divisor (larger = smaller stream)")
		seed      = fs.Int64("seed", 1, "firehose world seed; same seed + scenario = same stream")
		emSeed    = fs.Int64("em-seed", 1, "estimator seed")
		batch     = fs.Int("batch", 64, "accepted tweets per committed batch")
		interval  = fs.Duration("interval", 0, "paced emission interval (0 = replay at full speed)")
		workers   = fs.Int("workers", 1, "estimator parallelism; published rankings are identical at any value, 0 = GOMAXPROCS")
		topK      = fs.Int("topk", 100, "published ranking size")
		dataDir   = fs.String("data", "", "persistence directory (claim log + snapshots); empty = in-memory only")
		snapEvery = fs.Int("snapshot-every", 16, "snapshot the model every n committed batches")
		addr      = fs.String("addr", ":8090", "HTTP listen address (empty = no HTTP surface)")
		once      = fs.Bool("once", false, "exit when the firehose is exhausted instead of idling")
		traceBuf  = fs.Int("trace-buffer", 64, "refit traces retained by the flight recorder, served at /debug/runs")
		traceDir  = fs.String("trace-dir", "", "append every refit trace to this directory's traces.jsonl (read offline with sstrace)")
		quality   = fs.Bool("quality", false, "run the estimation-quality monitor: /debug/quality, alarm metrics, and (with -trace-dir) a quality.jsonl spill for ssqual")
		qualLam   = fs.Float64("quality-lambda", 0, "drift alarm threshold override (0 = qual default)")
		qualBound = fs.Int("quality-bound-every", 0, "evaluate the error bound every n refits (0 = qual default, negative = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *traceDir != "" {
		// Fail at startup, not on the first spilled trace.
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("trace dir: %w", err)
		}
	}

	world, err := twittersim.Generate(twittersim.Small(*scenario, *scale), randutil.New(*seed))
	if err != nil {
		return fmt.Errorf("generate scenario: %w", err)
	}
	fh := world.Firehose(twittersim.FirehoseOptions{
		Interval: *interval,
		Pace:     *interval > 0,
	})
	source := ingest.NewFirehoseSource(world, fh)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var qualOpts *qual.Options
	if *quality {
		qualOpts = &qual.Options{
			DriftLambda: *qualLam,
			BoundEvery:  *qualBound,
			BoundSeed:   *emSeed,
			Workers:     *workers,
		}
	}

	pipe, err := ingest.New(ctx, source, ingest.Options{
		Stream:        stream.Options{EM: core.Options{Seed: *emSeed, Workers: *workers}},
		BatchSize:     *batch,
		TopK:          *topK,
		Dir:           *dataDir,
		SnapshotEvery: *snapEvery,
		Logger:        logger,
		TraceBuffer:   *traceBuf,
		TraceDir:      *traceDir,
		Quality:       qualOpts,
	})
	if err != nil {
		return err
	}

	var srv *http.Server
	httpErr := make(chan error, 1)
	if *addr != "" {
		srv = &http.Server{
			Addr:              *addr,
			Handler:           ingest.NewServer(pipe),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       time.Minute,
			WriteTimeout:      time.Minute,
			IdleTimeout:       time.Minute,
		}
		go func() {
			fmt.Fprintln(os.Stderr, "ssingest: listening on", *addr)
			httpErr <- srv.ListenAndServe()
		}()
	}

	runErr := pipe.Run(ctx)
	if errors.Is(runErr, context.Canceled) {
		// Operator-initiated shutdown (crash-equivalent on purpose: the
		// claim log, not a final snapshot, is the durable truth).
		runErr = nil
	}
	exhausted := runErr == nil && ctx.Err() == nil

	if exhausted && !*once && srv != nil {
		// Keep serving the final rankings until the operator stops us.
		fmt.Fprintln(os.Stderr, "ssingest: stream exhausted, serving final rankings")
		<-ctx.Done()
	}

	if srv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && runErr == nil {
			runErr = fmt.Errorf("shutdown: %w", err)
		}
		if err := <-httpErr; !errors.Is(err, http.ErrServerClosed) && runErr == nil {
			runErr = err
		}
	}
	return runErr
}
