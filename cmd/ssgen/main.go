// Command ssgen generates datasets: either the paper's synthetic
// forest-structured claim matrices (Section V-A) as a claims JSON file, or
// a simulated Twitter stream (tweets JSON) from one of the Table III
// scenario presets.
//
// Usage:
//
//	ssgen -kind synthetic [-n 20] [-m 50] [-tau 9] [-seed 1] [-o data.json]
//	ssgen -kind twitter -scenario Ukraine [-scale 1] [-seed 1] [-o tweets.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"depsense/internal/randutil"
	"depsense/internal/synthetic"
	"depsense/internal/twittersim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssgen:", err)
		os.Exit(1)
	}
}

// tweetFile is the on-disk tweet stream format shared with cmd/apollo.
type tweetFile struct {
	Sources int                `json:"sources"`
	Follows [][2]int           `json:"follows"`
	Tweets  []twittersim.Tweet `json:"tweets"`
	// Kinds carries ground truth for offline grading (optional).
	Kinds []twittersim.Kind `json:"kinds,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssgen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "synthetic", "synthetic or twitter")
		n        = fs.Int("n", 20, "synthetic: number of sources")
		m        = fs.Int("m", 50, "synthetic: number of assertions")
		tau      = fs.Int("tau", 0, "synthetic: dependency trees (0 = paper default range)")
		scenario = fs.String("scenario", "Ukraine", "twitter: scenario preset name")
		config   = fs.String("config", "", "twitter: JSON file with a full twittersim scenario (overrides -scenario)")
		scale    = fs.Int("scale", 1, "twitter: volume divisor")
		seed     = fs.Int64("seed", 1, "random seed")
		output   = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := out
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	rng := randutil.New(*seed)

	switch *kind {
	case "synthetic":
		cfg := synthetic.DefaultConfig()
		cfg.Sources = *n
		cfg.Assertions = *m
		if *tau > 0 {
			cfg.Trees = synthetic.FixedInt(*tau)
		} else if cfg.Trees.Hi > *n {
			cfg.Trees = synthetic.FixedInt((*n + 1) / 2)
		}
		world, err := synthetic.Generate(cfg, rng)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "generated:", world.Dataset.Summarize())
		_, err = world.Dataset.WriteTo(w)
		return err
	case "twitter":
		var sc twittersim.Scenario
		if *config != "" {
			raw, err := os.ReadFile(*config)
			if err != nil {
				return err
			}
			if err := json.Unmarshal(raw, &sc); err != nil {
				return fmt.Errorf("decode scenario %s: %w", *config, err)
			}
		} else {
			preset, ok := twittersim.Preset(*scenario)
			if !ok {
				return fmt.Errorf("unknown scenario %q (try one of the Table III names)", *scenario)
			}
			sc = preset
			if *scale > 1 {
				sc = twittersim.Small(*scenario, *scale)
			}
		}
		world, err := twittersim.Generate(sc, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "generated: %+v\n", world.Summarize())
		file := tweetFile{Sources: sc.Sources, Tweets: world.Tweets, Kinds: world.Kinds}
		for i := 0; i < world.Graph.N(); i++ {
			for _, anc := range world.Graph.Ancestors(i) {
				file.Follows = append(file.Follows, [2]int{i, anc})
			}
		}
		enc := json.NewEncoder(w)
		return enc.Encode(file)
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
}
