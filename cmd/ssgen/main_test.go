package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/twittersim"
)

func TestGenerateSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.json")
	if err := run([]string{"-kind", "synthetic", "-n", "10", "-m", "20", "-tau", "4", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := claims.ReadDataset(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 10 || ds.M() != 20 {
		t.Fatalf("dims (%d,%d)", ds.N(), ds.M())
	}
	if ds.NumClaims() == 0 {
		t.Fatal("no claims generated")
	}
}

func TestGenerateTwitter(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tweets.json")
	if err := run([]string{"-kind", "twitter", "-scenario", "Kirkuk", "-scale", "40", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file tweetFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	if file.Sources == 0 || len(file.Tweets) == 0 || len(file.Kinds) == 0 {
		t.Fatalf("empty tweet file: sources=%d tweets=%d kinds=%d",
			file.Sources, len(file.Tweets), len(file.Kinds))
	}
}

func TestGenerateSyntheticToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "synthetic", "-n", "5", "-m", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"claims\"") {
		t.Fatal("stdout output missing dataset JSON")
	}
}

func TestRejectsUnknownKindAndScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "nope"}, &sb); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run([]string{"-kind", "twitter", "-scenario", "Atlantis"}, &sb); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestGenerateTwitterFromConfigFile(t *testing.T) {
	dir := t.TempDir()
	sc := twittersim.Small("Ukraine", 50)
	raw, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "tweets.json")
	if err := run([]string{"-kind", "twitter", "-config", cfgPath, "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	rawOut, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file tweetFile
	if err := json.Unmarshal(rawOut, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Tweets) == 0 {
		t.Fatal("no tweets from config scenario")
	}
}
