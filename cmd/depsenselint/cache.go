package main

import (
	"encoding/json"
	"os"
	"path/filepath"

	"depsense/internal/analysis/framework"
)

// fileCache implements framework.Cache over one JSON file. A cache whose
// version string (roster + analyzer docs + go version) differs from the
// current binary's is discarded wholesale, so analyzer changes invalidate
// everything and key collisions across configurations are impossible.
type fileCache struct {
	path    string
	version string
	dirty   bool
	doc     cacheDoc
}

type cacheDoc struct {
	Version string               `json:"version"`
	Entries map[string]cacheSlot `json:"entries"`
}

// cacheSlot stores the newest entry per import path; Key identifies the
// package contents (sources + dependency keys) the entry was computed from.
type cacheSlot struct {
	Key   string                `json:"key"`
	Entry *framework.CacheEntry `json:"entry"`
}

// openCache loads the cache file, starting empty when the file is missing,
// unreadable, or from a different analysis configuration.
func openCache(path, version string) *fileCache {
	c := &fileCache{path: path, version: version}
	c.doc.Entries = map[string]cacheSlot{}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var doc cacheDoc
	if json.Unmarshal(data, &doc) != nil || doc.Version != version || doc.Entries == nil {
		return c
	}
	c.doc = doc
	return c
}

// Get implements framework.Cache.
func (c *fileCache) Get(importPath, key string) (*framework.CacheEntry, bool) {
	slot, ok := c.doc.Entries[importPath]
	if !ok || slot.Key != key || slot.Entry == nil {
		return nil, false
	}
	return slot.Entry, true
}

// Put implements framework.Cache.
func (c *fileCache) Put(importPath, key string, e *framework.CacheEntry) {
	c.doc.Entries[importPath] = cacheSlot{Key: key, Entry: e}
	c.dirty = true
}

// save writes the cache back when anything changed, creating parent
// directories as needed.
func (c *fileCache) save() error {
	if !c.dirty {
		return nil
	}
	c.doc.Version = c.version
	data, err := json.Marshal(c.doc)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(c.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}
