// Command depsenselint is the multichecker for this repository's custom
// static-analysis suite: the determinism, numeric-safety, concurrency, and
// memory-contract rules that ordinary vet cannot see. It loads the packages
// matched by its argument patterns (default ./...), runs every analyzer
// (facts flow dependency-first, so cross-package contracts propagate), and
// prints findings as file:line:col: analyzer: message.
//
// Modes beyond the default print:
//
//	-fix         apply each finding's first suggested fix in place
//	-json        machine-readable output (findings, stale allows, cache stats)
//	-annotations render findings as GitHub Actions ::error commands
//	-staleallow  also audit //lint:allow directives that suppress nothing
//	-cache FILE  package-level result cache keyed by source+dependency hash
//
// Exit status: 0 clean, 1 findings, 2 load/run error.
//
// CI runs `go run ./cmd/depsenselint -cache ... -annotations ./...` (see
// .github/workflows/ci.yml); the invocation is fully offline — the suite is
// stdlib-only and type-checks against export data produced by the local go
// toolchain. Suppress a finding with //lint:allow <analyzer> <reason>; the
// reason is mandatory, and -staleallow flags directives that outlive their
// finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"depsense/internal/analysis/chandisc"
	"depsense/internal/analysis/ctxloop"
	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/goroleak"
	"depsense/internal/analysis/maporder"
	"depsense/internal/analysis/mutexguard"
	"depsense/internal/analysis/probexpr"
	"depsense/internal/analysis/scratchalias"
	"depsense/internal/analysis/seedsource"
)

// analyzers is the full suite, in reporting-name order. zonefacts joins the
// roster implicitly through Requires.
var analyzers = []*framework.Analyzer{
	chandisc.Analyzer,
	ctxloop.Analyzer,
	goroleak.Analyzer,
	maporder.Analyzer,
	mutexguard.Analyzer,
	probexpr.Analyzer,
	scratchalias.Analyzer,
	seedsource.Analyzer,
}

type options struct {
	dir         string
	fix         bool
	jsonOut     bool
	annotations bool
	staleAllow  bool
	cachePath   string
}

func main() {
	var opts options
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.StringVar(&opts.dir, "C", ".", "directory to resolve package patterns in (module root)")
	flag.BoolVar(&opts.fix, "fix", false, "apply each finding's first suggested fix to the source files")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit findings as JSON instead of text")
	flag.BoolVar(&opts.annotations, "annotations", false, "emit findings as GitHub Actions ::error annotations")
	flag.BoolVar(&opts.staleAllow, "staleallow", false, "also report //lint:allow directives that suppress nothing")
	flag.StringVar(&opts.cachePath, "cache", "", "package-result cache file; unchanged packages skip analysis")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: depsenselint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the depsense determinism/concurrency/memory-contract analyzers.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := runLint(opts, patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "depsenselint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// jsonOutput is the -json document.
type jsonOutput struct {
	Findings    []framework.Finding `json:"findings"`
	StaleAllows []framework.Finding `json:"staleAllows,omitempty"`
	Analyzed    int                 `json:"analyzed"`
	Skipped     int                 `json:"skipped"`
	Fixed       int                 `json:"fixed,omitempty"`
}

// runLint loads the packages, runs the suite in the requested mode, writes
// output to w, and returns the count of findings that gate the exit status.
func runLint(opts options, patterns []string, w io.Writer) (int, error) {
	pkgs, err := framework.Load(opts.dir, patterns...)
	if err != nil {
		return 0, err
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			// Type errors would make analysis unreliable; surface them.
			return 0, fmt.Errorf("type-checking %s: %v", p.ImportPath, terr)
		}
	}

	var runOpts framework.Options
	var cache *fileCache
	if opts.cachePath != "" {
		cache = openCache(opts.cachePath, cacheVersion())
		runOpts.Cache = cache
	}
	res, err := framework.Run(pkgs, analyzers, runOpts)
	if err != nil {
		return 0, err
	}
	if cache != nil {
		if err := cache.save(); err != nil {
			return 0, fmt.Errorf("saving cache: %v", err)
		}
	}

	findings := res.Findings
	if opts.staleAllow {
		findings = append(findings, res.StaleAllows...)
	}

	fixed := 0
	if opts.fix {
		var remaining []framework.Finding
		var fixable []framework.Finding
		for _, f := range findings {
			if len(f.Fixes) > 0 {
				fixable = append(fixable, f)
			} else {
				remaining = append(remaining, f)
			}
		}
		if len(fixable) > 0 {
			if err := applyToDisk(fixable, pkgs); err != nil {
				return 0, err
			}
			fixed = len(fixable)
		}
		findings = remaining
	}

	switch {
	case opts.jsonOut:
		out := jsonOutput{Findings: findings, Analyzed: res.Analyzed, Skipped: res.Skipped, Fixed: fixed}
		if opts.staleAllow {
			// Already merged above for the exit status; split back out so
			// consumers can tell contract findings from audit findings.
			out.Findings, out.StaleAllows = splitStale(findings)
		}
		if out.Findings == nil {
			out.Findings = []framework.Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 0, err
		}
	case opts.annotations:
		for _, f := range findings {
			fmt.Fprintln(w, annotation(f))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
		if fixed > 0 {
			fmt.Fprintf(w, "depsenselint: applied %d suggested fix(es)\n", fixed)
		}
	}
	if opts.cachePath != "" && !opts.jsonOut {
		fmt.Fprintf(os.Stderr, "depsenselint: %d package(s) analyzed, %d served from cache\n",
			res.Analyzed, res.Skipped)
	}
	return len(findings), nil
}

// splitStale separates staleallow audit findings from contract findings.
func splitStale(findings []framework.Finding) (rest, stale []framework.Finding) {
	for _, f := range findings {
		if f.Analyzer == framework.StaleAllowName {
			stale = append(stale, f)
		} else {
			rest = append(rest, f)
		}
	}
	return rest, stale
}

// applyToDisk applies each finding's first suggested fix to the source
// files in place.
func applyToDisk(findings []framework.Finding, pkgs []*framework.Package) error {
	sources := map[string][]byte{}
	for _, p := range pkgs {
		for path, src := range p.Sources {
			sources[path] = src
		}
	}
	fixedFiles, err := framework.ApplyFixes(findings, sources)
	if err != nil {
		return fmt.Errorf("applying fixes: %v", err)
	}
	paths := make([]string, 0, len(fixedFiles))
	for path := range fixedFiles {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, fixedFiles[path], st.Mode().Perm()); err != nil {
			return err
		}
	}
	return nil
}

// annotation renders a finding as a GitHub Actions workflow command, so
// findings attach to the diff in pull requests.
func annotation(f framework.Finding) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=depsenselint/%s::%s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, escapeAnnotation(f.Message))
}

// escapeAnnotation applies the workflow-command data escaping rules.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// cacheVersion identifies the analysis configuration: a cache produced by a
// different roster, analyzer wording, or toolchain must not be reused.
func cacheVersion() string {
	parts := []string{"v1", runtime.Version()}
	for _, a := range analyzers {
		parts = append(parts, a.Name+"#"+a.Doc)
	}
	return strings.Join(parts, "|")
}
