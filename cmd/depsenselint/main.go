// Command depsenselint is the multichecker for this repository's custom
// static-analysis suite: the determinism and numeric-safety contracts that
// ordinary vet cannot see. It loads the packages matched by its argument
// patterns (default ./...), runs every analyzer, and prints findings as
// file:line:col: analyzer: message.
//
// Exit status: 0 clean, 1 findings, 2 load/run error.
//
// CI runs `go run ./cmd/depsenselint ./...` (see .github/workflows/ci.yml);
// the invocation is fully offline — the suite is stdlib-only and
// type-checks against export data produced by the local go toolchain.
// Suppress a finding with //lint:allow <analyzer> <reason>; the reason is
// mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"depsense/internal/analysis/ctxloop"
	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/maporder"
	"depsense/internal/analysis/probexpr"
	"depsense/internal/analysis/seedsource"
)

// analyzers is the full suite, in reporting-name order.
var analyzers = []*framework.Analyzer{
	ctxloop.Analyzer,
	maporder.Analyzer,
	probexpr.Analyzer,
	seedsource.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "directory to resolve package patterns in (module root)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: depsenselint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the depsense determinism/numeric-safety analyzers.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := runLint(*dir, patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "depsenselint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// runLint loads the packages, runs the suite, writes findings to w, and
// returns the finding count.
func runLint(dir string, patterns []string, w io.Writer) (int, error) {
	pkgs, err := framework.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			// Type errors would make analysis unreliable; surface them.
			return 0, fmt.Errorf("type-checking %s: %v", p.ImportPath, terr)
		}
	}
	findings, err := framework.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	return len(findings), nil
}
