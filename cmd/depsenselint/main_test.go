package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot returns the module root (this test runs in cmd/depsenselint).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestBinaryBuildsAndRunsClean is the acceptance smoke test: the
// multichecker binary builds, and the whole repository is clean — zero
// findings that are not justified by a //lint:allow suppression.
func TestBinaryBuildsAndRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips whole-repo analysis")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "depsenselint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/depsenselint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building depsenselint: %v\n%s", err, out)
	}

	var stdout, stderr bytes.Buffer
	run := exec.Command(bin, "./...")
	run.Dir = root
	run.Stdout = &stdout
	run.Stderr = &stderr
	if err := run.Run(); err != nil {
		t.Fatalf("depsenselint ./... not clean: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "" {
		t.Errorf("expected no findings, got:\n%s", got)
	}
}

// TestListFlag checks the analyzer roster the binary advertises.
func TestListFlag(t *testing.T) {
	run := exec.Command("go", "run", ".", "-list")
	run.Dir = "."
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, name := range []string{"ctxloop", "maporder", "probexpr", "seedsource"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}
