package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot returns the module root (this test runs in cmd/depsenselint).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// buildLint builds the depsenselint binary once per test.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "depsenselint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/depsenselint")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building depsenselint: %v\n%s", err, out)
	}
	return bin
}

// TestBinaryBuildsAndRunsClean is the acceptance smoke test: the
// multichecker binary builds, and the whole repository is clean — zero
// findings that are not justified by a //lint:allow suppression. The
// -staleallow audit must be clean too: every suppression still earns its
// keep.
func TestBinaryBuildsAndRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips whole-repo analysis")
	}
	bin := buildLint(t)
	var stdout, stderr bytes.Buffer
	run := exec.Command(bin, "-staleallow", "./...")
	run.Dir = repoRoot(t)
	run.Stdout = &stdout
	run.Stderr = &stderr
	if err := run.Run(); err != nil {
		t.Fatalf("depsenselint -staleallow ./... not clean: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "" {
		t.Errorf("expected no findings, got:\n%s", got)
	}
}

// TestListFlag checks the full eight-analyzer roster the binary advertises.
func TestListFlag(t *testing.T) {
	run := exec.Command("go", "run", ".", "-list")
	run.Dir = "."
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"chandisc", "ctxloop", "goroleak", "maporder",
		"mutexguard", "probexpr", "scratchalias", "seedsource",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

// writeTempModule lays out a one-package module carrying a chandisc
// violation (a bare pipeline send) and returns its directory.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"p/p.go": `// Package p is a depsenselint cache/fix test subject.
//
//depsense:zone pipeline
package p

import "context"

type stage struct {
	out chan int
}

func (s *stage) produce(ctx context.Context, v int) {
	s.out <- v
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// lintJSON runs the binary with -json plus extra flags and decodes the
// output document. Exit status 1 (findings present) is not an error.
func lintJSON(t *testing.T, bin, dir string, extra ...string) jsonOutput {
	t.Helper()
	args := append([]string{"-C", dir, "-json"}, extra...)
	args = append(args, "./...")
	var stdout, stderr bytes.Buffer
	run := exec.Command(bin, args...)
	run.Stdout = &stdout
	run.Stderr = &stderr
	if err := run.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("depsenselint %v: %v\nstderr:\n%s", args, err, stderr.String())
		}
	}
	var out jsonOutput
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	return out
}

// TestCacheGate exercises the cached CI gate end to end: a violation is
// found, the unchanged rebuild is served entirely from the cache while
// still failing, and editing the package invalidates its entry.
func TestCacheGate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips go-list subprocesses")
	}
	bin := buildLint(t)
	dir := writeTempModule(t)
	cache := filepath.Join(t.TempDir(), "lint-cache.json")

	first := lintJSON(t, bin, dir, "-cache", cache)
	if len(first.Findings) != 1 || !strings.Contains(first.Findings[0].Message, "pipeline channel") {
		t.Fatalf("expected one chandisc finding on first run, got %+v", first.Findings)
	}
	if first.Skipped != 0 || first.Analyzed == 0 {
		t.Fatalf("first run should analyze everything: %+v", first)
	}

	second := lintJSON(t, bin, dir, "-cache", cache)
	if len(second.Findings) != 1 {
		t.Fatalf("cached rebuild must still fail on the stored finding, got %+v", second.Findings)
	}
	if second.Analyzed != 0 || second.Skipped != first.Analyzed {
		t.Fatalf("no-op rebuild should be served from cache (analyzed=0, skipped=%d), got %+v",
			first.Analyzed, second)
	}

	// Editing the package must invalidate its cache entry.
	pfile := filepath.Join(dir, "p", "p.go")
	src, err := os.ReadFile(pfile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pfile, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	third := lintJSON(t, bin, dir, "-cache", cache)
	if third.Analyzed == 0 {
		t.Fatalf("edited package should be re-analyzed, got %+v", third)
	}
	if len(third.Findings) != 1 {
		t.Fatalf("edited package still carries the violation, got %+v", third.Findings)
	}
}

// TestFixFlag applies the chandisc suggested fix in place and verifies the
// module is clean afterwards.
func TestFixFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips go-list subprocesses")
	}
	bin := buildLint(t)
	dir := writeTempModule(t)

	var stdout, stderr bytes.Buffer
	fix := exec.Command(bin, "-C", dir, "-fix", "./...")
	fix.Stdout = &stdout
	fix.Stderr = &stderr
	if err := fix.Run(); err != nil {
		t.Fatalf("-fix run failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "applied 1 suggested fix") {
		t.Fatalf("expected fix application notice, got:\n%s", stdout.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "p", "p.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "case <-ctx.Done():") {
		t.Fatalf("fix not applied to source:\n%s", src)
	}

	after := lintJSON(t, bin, dir)
	if len(after.Findings) != 0 {
		t.Fatalf("module should be clean after -fix, got %+v", after.Findings)
	}
}

// TestAnnotationsFlag renders findings as GitHub Actions commands.
func TestAnnotationsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips go-list subprocesses")
	}
	bin := buildLint(t)
	dir := writeTempModule(t)

	var stdout bytes.Buffer
	run := exec.Command(bin, "-C", dir, "-annotations", "./...")
	run.Stdout = &stdout
	err := run.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("expected exit 1 with findings, got %v", err)
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "::error file=") || !strings.Contains(line, "title=depsenselint/chandisc") {
		t.Fatalf("unexpected annotation format:\n%s", line)
	}
}
