// Command experiments reproduces every table and figure of the paper's
// evaluation section. Each experiment prints the same rows or series the
// paper reports; EXPERIMENTS.md records a full run next to the paper's
// numbers.
//
// Usage:
//
//	experiments [-exp all|table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|table3|fig11|extdepth]
//	            [-quick] [-seed N] [-runs N] [-estruns N] [-scale N] [-workers N] [-csv dir]
//	            [-trace file.jsonl]
//
// With -trace, every estimator and Gibbs iteration fired across the
// selected experiments is recorded into one trace (with convergence
// diagnostics) and written as JSONL — even when the sweep is interrupted;
// inspect it with sstrace.
//
// The special experiment id "benchpar" (never part of "all") measures the
// wall-clock scaling of the parallel hot paths across worker counts and
// writes the machine-readable trajectory to -benchout.
//
// The special experiment id "benchhot" (also never part of "all") times the
// estimator's hot-path kernels — dense reference vs production sparse,
// single-threaded, on Table III-scale and 10× Table III-scale datasets —
// and writes the report to -hotout. With -hotmin it doubles as a CI gate:
// the run fails unless every case's dense/sparse speedup reaches the
// minimum and the kernels' outputs are bit-identical.
//
// The special experiment id "benchserve" (also never part of "all") drives
// the HTTP serving layer with an open-loop load generator — repeating
// payloads against the result cache and request coalescing, then a
// saturation burst against a one-slot server — and writes p50/p99 latency,
// hit/reuse rates, and shed behavior to -serveout. With -servemin it
// doubles as a CI gate: the run fails unless shedding carried Retry-After,
// the serving counters reconcile, and the reuse rate reaches the minimum.
//
// The special experiment id "benchqual" (also never part of "all") replays
// a seeded twittersim stream through the streaming estimator with the
// estimation-quality monitor attached, times every ObserveRefit separately
// from the refit it rides, and writes the overhead report to -qualout.
// With -qualmax it doubles as a CI gate: the run fails if the monitor
// costs more than that fraction of the fitting time.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"depsense/internal/eval"
	"depsense/internal/plot"
	"depsense/internal/runctx"
	"depsense/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id: all, table1, fig3..fig11, table3, extdepth, extsybil")
		quick    = fs.Bool("quick", false, "reduced-scale smoke run")
		seed     = fs.Int64("seed", 1, "base random seed")
		runs     = fs.Int("runs", 0, "override bound-experiment repetitions (paper: 20)")
		estRuns  = fs.Int("estruns", 0, "override estimator repetitions (paper: 300)")
		scale    = fs.Int("scale", 0, "override empirical volume divisor (1 = Table III scale)")
		workers  = fs.Int("workers", 0, "parallelism across repetitions and inside the bound/EM hot paths (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
		csvDir   = fs.String("csv", "", "also write each experiment's series as CSV into this directory")
		svgDir   = fs.String("svg", "", "also render each figure as SVG into this directory")
		benchOut = fs.String("benchout", "BENCH_parallel.json", "benchpar: write the speedup trajectory JSON to this path")
		hotOut   = fs.String("hotout", "BENCH_hotpath.json", "benchhot: write the dense-vs-sparse kernel timing JSON to this path")
		hotMin   = fs.Float64("hotmin", 0, "benchhot: fail unless every case's dense/sparse speedup is at least this and the kernels agree bit for bit (0 disables the gate)")
		serveOut = fs.String("serveout", "BENCH_serving.json", "benchserve: write the serving-layer load report JSON to this path")
		serveMin = fs.Float64("servemin", -1, "benchserve: fail unless the reuse rate is at least this, every 429 carried Retry-After, and the serving counters reconcile (negative disables the gate)")
		qualOut  = fs.String("qualout", "BENCH_quality.json", "benchqual: write the quality-monitor overhead report JSON to this path")
		qualMax  = fs.Float64("qualmax", -1, "benchqual: fail if the monitor costs more than this fraction of the fits it rides (negative disables the gate)")
		traceOut = fs.String("trace", "", "record every estimator iteration across the selected experiments and write the trace as JSONL to this file; inspect with sstrace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := eval.DefaultConfig()
	if *quick {
		cfg = eval.QuickConfig()
	}
	cfg.Ctx = ctx // SIGINT/SIGTERM stop the sweeps between repetitions
	cfg.Seed = *seed
	if *runs > 0 {
		cfg.BoundRuns = *runs
	}
	if *estRuns > 0 {
		cfg.EstimatorRuns = *estRuns
	}
	if *scale > 0 {
		cfg.EmpiricalScale = *scale
	}
	cfg.Workers = *workers

	if *traceOut != "" {
		tb := trace.NewBuilder(*exp, "experiments", nil)
		tb.SetAttr("exp", *exp)
		tb.SetAttr("seed", fmt.Sprint(*seed))
		cfg.Ctx = runctx.WithHook(cfg.Ctx, tb.Hook())
		// Deferred so an interrupted sweep still leaves its post-mortem
		// behind; the run error wins over a spill error.
		defer func() {
			status, msg := trace.StatusOf(err), ""
			if err != nil {
				msg = err.Error()
			}
			if werr := trace.WriteFile(*traceOut, tb.Finish(status, msg)); werr != nil {
				if err == nil {
					err = fmt.Errorf("write trace: %w", werr)
				} else {
					fmt.Fprintln(os.Stderr, "experiments: write trace:", werr)
				}
			}
		}()
	}

	for _, dir := range []string{*csvDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}
	writeFile := func(dir, name string, emit func(io.Writer) error) error {
		if dir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return emit(f)
	}
	writeCSV := func(id string, emit func(io.Writer) error) error {
		return writeFile(*csvDir, id+".csv", emit)
	}
	writeSVG := func(id string, chart *plot.Chart) error {
		return writeFile(*svgDir, id+".svg", chart.RenderSVG)
	}

	selected := strings.Split(strings.ToLower(*exp), ",")
	want := func(id string) bool {
		for _, s := range selected {
			if s == "all" || s == id {
				return true
			}
		}
		return false
	}
	// benchpar, benchhot, benchserve, and benchqual are opt-in only: they
	// are machine benchmarks, not paper experiments, so "all" never selects
	// them.
	wantBench, wantHot, wantServe, wantQual := false, false, false, false
	for _, s := range selected {
		switch s {
		case "benchpar":
			wantBench = true
		case "benchhot":
			wantHot = true
		case "benchserve":
			wantServe = true
		case "benchqual":
			wantQual = true
		}
	}
	if wantBench {
		o := eval.BenchParallelOptions{}
		if *quick {
			o = eval.BenchParallelOptions{
				EMSources: 60, EMAssertions: 200, ExactN: 16, Sweeps: 1500, Reps: 1,
			}
		}
		start := time.Now()
		fmt.Fprintln(out, "==== benchpar ====")
		rep, err := eval.BenchParallel(cfg, o)
		if err != nil {
			return fmt.Errorf("benchpar: %w", err)
		}
		if err := rep.Render(out); err != nil {
			return err
		}
		f, err := os.Create(*benchOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n(benchpar took %s)\n\n", *benchOut, time.Since(start).Round(time.Millisecond))
	}
	if wantHot {
		o := eval.BenchHotOptions{}
		if *quick {
			o = eval.BenchHotOptions{
				Scales: []eval.BenchHotScale{
					{Name: "smoke", Sources: 400, Assertions: 300, Claims: 1500},
				},
				StepIters: 2, FitIters: 2, Reps: 1,
			}
		}
		start := time.Now()
		fmt.Fprintln(out, "==== benchhot ====")
		rep, err := eval.BenchHot(cfg, o)
		if err != nil {
			return fmt.Errorf("benchhot: %w", err)
		}
		if err := rep.Render(out); err != nil {
			return err
		}
		f, err := os.Create(*hotOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n(benchhot took %s)\n\n", *hotOut, time.Since(start).Round(time.Millisecond))
		if *hotMin > 0 {
			if !rep.AllIdentical() {
				return fmt.Errorf("benchhot: kernel outputs diverged — the dense-reference contract is broken")
			}
			if ms := rep.MinSpeedup(); ms < *hotMin {
				return fmt.Errorf("benchhot: min dense/sparse speedup %.2f is below the required %.2f", ms, *hotMin)
			}
		}
	}
	if wantServe {
		o := eval.BenchServeOptions{}
		if *quick {
			o = eval.BenchServeOptions{Requests: 150, RatePerSec: 600, Unique: 6, Burst: 12}
		}
		start := time.Now()
		fmt.Fprintln(out, "==== benchserve ====")
		rep, err := eval.BenchServe(cfg, o)
		if err != nil {
			return fmt.Errorf("benchserve: %w", err)
		}
		if err := rep.Render(out); err != nil {
			return err
		}
		f, err := os.Create(*serveOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n(benchserve took %s)\n\n", *serveOut, time.Since(start).Round(time.Millisecond))
		if *serveMin >= 0 {
			if err := rep.Check(*serveMin); err != nil {
				return fmt.Errorf("benchserve: %w", err)
			}
		}
	}
	if wantQual {
		o := eval.BenchQualOptions{}
		if *quick {
			// Large enough that the fit dwarfs timer noise: at smaller
			// scales the ~0.1 ms monitor share makes the ratio jumpy.
			o = eval.BenchQualOptions{Scale: 20, Batch: 64, Reps: 2}
		}
		start := time.Now()
		fmt.Fprintln(out, "==== benchqual ====")
		rep, err := eval.BenchQual(cfg, o)
		if err != nil {
			return fmt.Errorf("benchqual: %w", err)
		}
		if err := rep.Render(out); err != nil {
			return err
		}
		f, err := os.Create(*qualOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n(benchqual took %s)\n\n", *qualOut, time.Since(start).Round(time.Millisecond))
		if *qualMax >= 0 {
			if err := rep.Check(*qualMax); err != nil {
				return fmt.Errorf("benchqual: %w", err)
			}
		}
	}

	section := func(id string, fn func() error) error {
		if !want(id) {
			return nil
		}
		start := time.Now()
		fmt.Fprintf(out, "==== %s ====\n", id)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(out, "(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := section("table1", func() error {
		r, err := eval.TableI()
		if err != nil {
			return err
		}
		return r.Render(out)
	}); err != nil {
		return err
	}

	var fig3 eval.BoundSeries
	if err := section("fig3", func() error {
		var err error
		fig3, err = eval.Fig3BoundVsSources(cfg)
		if err != nil {
			return err
		}
		if err := writeCSV("fig3", fig3.WriteCSV); err != nil {
			return err
		}
		if err := writeSVG("fig3", fig3.Chart()); err != nil {
			return err
		}
		return fig3.Render(out)
	}); err != nil {
		return err
	}
	for _, f := range []struct {
		id string
		fn func(eval.Config) (eval.BoundSeries, error)
	}{
		{"fig4", eval.Fig4BoundVsTrees},
		{"fig5", eval.Fig5BoundVsOdds},
	} {
		f := f
		if err := section(f.id, func() error {
			s, err := f.fn(cfg)
			if err != nil {
				return err
			}
			if err := writeCSV(f.id, s.WriteCSV); err != nil {
				return err
			}
			if err := writeSVG(f.id, s.Chart()); err != nil {
				return err
			}
			return s.Render(out)
		}); err != nil {
			return err
		}
	}
	if err := section("fig6", func() error {
		if fig3.Points == nil {
			var err error
			fig3, err = eval.Fig3BoundVsSources(cfg)
			if err != nil {
				return err
			}
		}
		timing := eval.Fig6Timing(fig3)
		if err := writeCSV("fig6", timing.WriteCSV); err != nil {
			return err
		}
		if err := writeSVG("fig6", timing.TimingChart()); err != nil {
			return err
		}
		return timing.Render(out)
	}); err != nil {
		return err
	}

	for _, f := range []struct {
		id string
		fn func(eval.Config) (eval.EstimatorSeries, error)
	}{
		{"fig7", eval.Fig7EstimatorVsSources},
		{"fig8", eval.Fig8EstimatorVsAssertions},
		{"fig9", eval.Fig9EstimatorVsTrees},
		{"fig10", eval.Fig10EstimatorVsOdds},
		{"extdepth", eval.ExtDepthEstimators},
	} {
		f := f
		if err := section(f.id, func() error {
			s, err := f.fn(cfg)
			if err != nil {
				return err
			}
			if err := writeCSV(f.id, s.WriteCSV); err != nil {
				return err
			}
			if err := writeSVG(f.id, s.Chart()); err != nil {
				return err
			}
			return s.Render(out)
		}); err != nil {
			return err
		}
	}

	if err := section("extsybil", func() error {
		r, err := eval.ExtSybilAttack(cfg)
		if err != nil {
			return err
		}
		return r.Render(out)
	}); err != nil {
		return err
	}

	if want("table3") || want("fig11") {
		start := time.Now()
		emp, err := eval.Empirical(cfg)
		if err != nil {
			return fmt.Errorf("empirical: %w", err)
		}
		if want("table3") {
			fmt.Fprintln(out, "==== table3 ====")
			if err := emp.RenderTableIII(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if want("fig11") {
			fmt.Fprintln(out, "==== fig11 ====")
			if err := writeCSV("fig11", emp.WriteCSV); err != nil {
				return err
			}
			if err := writeSVG("fig11", emp.Chart()); err != nil {
				return err
			}
			if err := emp.RenderFig11(out); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "(empirical took %s)\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
