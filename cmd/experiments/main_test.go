package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTableI(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "table1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.26980433") {
		t.Fatalf("table1 output missing paper value:\n%s", sb.String())
	}
}

func TestRunQuickFig4(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-quick", "-exp", "fig4", "-runs", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig 4") || !strings.Contains(out, "tau") {
		t.Fatalf("fig4 output malformed:\n%s", out)
	}
}

func TestRunQuickFig9(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-quick", "-exp", "fig9", "-estruns", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "EM-Ext") {
		t.Fatalf("fig9 output missing algorithms:\n%s", sb.String())
	}
}

func TestRunSelectsMultiple(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-quick", "-exp", "table1,fig6", "-runs", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "==== table1 ====") || !strings.Contains(out, "==== fig6 ====") {
		t.Fatalf("multi-select output malformed:\n%s", out)
	}
	if strings.Contains(out, "==== fig9 ====") {
		t.Fatal("unselected experiment ran")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-bogus"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(context.Background(), []string{"-quick", "-exp", "fig6,fig9", "-runs", "1", "-estruns", "2", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig6.csv", "fig9.csv"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if !strings.Contains(string(raw), ",") {
			t.Fatalf("%s not CSV:\n%s", name, raw)
		}
	}
}
