package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"depsense/internal/randutil"
	"depsense/internal/twittersim"
)

func writeTweetFile(t *testing.T, withKinds bool) string {
	t.Helper()
	sc := twittersim.Small("Kirkuk", 40)
	w, err := twittersim.Generate(sc, randutil.New(9))
	if err != nil {
		t.Fatal(err)
	}
	file := tweetFile{Sources: sc.Sources, Tweets: w.Tweets}
	if withKinds {
		file.Kinds = w.Kinds
	}
	for i := 0; i < w.Graph.N(); i++ {
		for _, anc := range w.Graph.Ancestors(i) {
			file.Follows = append(file.Follows, [2]int{i, anc})
		}
	}
	raw, err := json.Marshal(file)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tweets.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPipelineWithGrading(t *testing.T) {
	path := writeTweetFile(t, true)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-in", path, "-alg", "EM-Ext", "-topk", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "pipeline: EM-Ext") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "graded top-5") {
		t.Fatalf("missing grading:\n%s", out)
	}
	if !strings.Contains(out, "  1. p=") {
		t.Fatalf("missing ranking:\n%s", out)
	}
}

func TestPipelineWithoutKinds(t *testing.T) {
	path := writeTweetFile(t, false)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-in", path, "-alg", "Voting", "-topk", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "graded") {
		t.Fatal("grading without ground truth")
	}
}

func TestValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{}, &sb); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run(context.Background(), []string{"-in", "/does/not/exist.json"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeTweetFile(t, true)
	if err := run(context.Background(), []string{"-in", path, "-alg", "Oracle"}, &sb); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	garbage := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(garbage, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-in", garbage}, &sb); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

func TestTwitterJSONFormat(t *testing.T) {
	archive := `{"id_str":"1","text":"explosion near bridge7 n4 #x","created_at":"Sat Mar 14 10:00:00 +0000 2015","user":{"id_str":"42","screen_name":"alice"}}
{"id_str":"2","text":"RT @alice: explosion near bridge7 n4 #x","created_at":"Sat Mar 14 10:05:00 +0000 2015","user":{"id_str":"77"},"retweeted_status":{"id_str":"1","user":{"id_str":"42"}}}`
	path := filepath.Join(t.TempDir(), "archive.jsonl")
	if err := os.WriteFile(path, []byte(archive), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-in", path, "-format", "twitter-json", "-alg", "Voting", "-topk", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dependent=1") {
		t.Fatalf("output missing dependency:\n%s", sb.String())
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-in", "x", "-format", "csv"}, &sb); err == nil {
		t.Fatal("unknown format accepted")
	}
}
