// Command apollo runs the end-to-end fact-finding pipeline on a tweet
// stream JSON (as produced by ssgen -kind twitter): cluster tweets into
// assertions, derive the source-claim matrix and dependency indicators,
// run a fact-finder, and print the top-ranked assertions. When the input
// carries ground-truth kinds, it also grades the ranking.
//
// Usage:
//
//	apollo -in tweets.json [-alg EM-Ext] [-topk 20] [-seed 1] [-trace run.jsonl]
//
// With -trace, the run's full trace — pipeline stage timings, estimator
// iteration events, and convergence diagnostics — is written as JSONL,
// even when the run is interrupted; inspect it with sstrace.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/factfind"
	"depsense/internal/grader"
	reportpkg "depsense/internal/report"
	"depsense/internal/runctx"
	"depsense/internal/trace"
	"depsense/internal/tweetjson"
	"depsense/internal/twittersim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apollo:", err)
		os.Exit(1)
	}
}

type tweetFile struct {
	Sources int                `json:"sources"`
	Follows [][2]int           `json:"follows"`
	Tweets  []twittersim.Tweet `json:"tweets"`
	Kinds   []twittersim.Kind  `json:"kinds,omitempty"`
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("apollo", flag.ContinueOnError)
	var (
		input    = fs.String("in", "", "input file (required)")
		format   = fs.String("format", "sim", "input format: sim (ssgen tweet stream) or twitter-json (Twitter API v1.1 archive)")
		alg      = fs.String("alg", "EM-Ext", "fact-finder: "+strings.Join(algNames(), ", "))
		topK     = fs.Int("topk", 20, "ranked assertions to print")
		report   = fs.String("report", "", "also write an HTML report to this file")
		seed     = fs.Int64("seed", 1, "random seed")
		workers  = fs.Int("workers", 1, "estimator parallelism (EM block sharding and restart fan-out); results are identical at any value, 0 = GOMAXPROCS")
		traceOut = fs.String("trace", "", "write the run trace (stages, iteration events, convergence diagnostics) as JSONL to this file; inspect with sstrace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		return fmt.Errorf("-in is required")
	}
	finder := pickAlg(*alg, core.Options{Seed: *seed, Workers: *workers})
	if finder == nil {
		return fmt.Errorf("unknown algorithm %q; known: %s", *alg, strings.Join(algNames(), ", "))
	}

	var (
		in   apollo.Input
		file tweetFile
	)
	switch *format {
	case "sim":
		raw, err := os.ReadFile(*input)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("decode %s: %w", *input, err)
		}
		graph := depgraph.NewGraph(file.Sources)
		for _, e := range file.Follows {
			if err := graph.AddFollow(e[0], e[1]); err != nil {
				return err
			}
		}
		msgs := make([]apollo.Message, len(file.Tweets))
		for i, t := range file.Tweets {
			msgs[i] = apollo.Message{Source: t.Source, Time: int64(t.ID), Text: t.Text}
		}
		in = apollo.Input{NumSources: file.Sources, Messages: msgs, Graph: graph}
	case "twitter-json":
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		tweets, err := tweetjson.Parse(f)
		if err != nil {
			return err
		}
		in, _, err = tweetjson.ToPipeline(tweets)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}

	var tb *trace.Builder
	if *traceOut != "" {
		tb = trace.NewBuilder(*input, "apollo", nil)
		tb.SetAttr("algorithm", finder.Name())
		tb.SetAttr("seed", fmt.Sprint(*seed))
		ctx = runctx.WithHook(ctx, tb.Hook())
	}
	pipe, err := apollo.RunContext(ctx, in, finder, apollo.Options{TopK: *topK})
	if tb != nil {
		// Interrupted and failed runs spill too: the trace is the
		// post-mortem, so it must survive exactly the runs that need one.
		if pipe != nil {
			for _, st := range pipe.Stages {
				tb.Stage(st.Stage, st.Duration)
			}
		}
		status, msg := trace.StatusOf(err), ""
		if err != nil {
			msg = err.Error()
		}
		if werr := trace.WriteFile(*traceOut, tb.Finish(status, msg)); werr != nil {
			if err == nil {
				return fmt.Errorf("write trace: %w", werr)
			}
			fmt.Fprintln(os.Stderr, "apollo: write trace:", werr)
		}
	}
	if err != nil {
		if reason := runctx.Reason(err); reason != "" && pipe != nil && pipe.Result != nil {
			// Interrupted mid-estimation: report how far the run got
			// before exiting cleanly.
			fmt.Fprintf(out, "interrupted (%s): %s completed %d iterations over %s — partial ranking discarded\n",
				reason, finder.Name(), pipe.Result.Iterations, pipe.Dataset.Summarize())
		}
		return err
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := reportpkg.Render(f, reportpkg.Input{
			Title:     "Fact-finding report: " + *input,
			Algorithm: finder.Name(),
			Pipeline:  pipe,
		}); err != nil {
			return fmt.Errorf("render report: %w", err)
		}
		fmt.Fprintln(out, "report written to", *report)
	}

	fmt.Fprintf(out, "pipeline: %s | %s\n", finder.Name(), pipe.Dataset.Summarize())
	var labels []twittersim.Kind
	if len(file.Kinds) > 0 {
		labels, err = grader.Grade(pipe.MessageAssertion, file.Tweets, file.Kinds)
		if err != nil {
			return err
		}
		score, err := grader.ScoreTopK(pipe.Ranked, labels)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "graded top-%d: accuracy=%.3f (True=%d False=%d Opinion=%d)\n",
			len(pipe.Ranked), score.Accuracy(), score.True, score.False, score.Opinion)
	}
	fmt.Fprintln(out)
	for rank, c := range pipe.Ranked {
		label := ""
		if labels != nil {
			label = " [" + labels[c].String() + "]"
		}
		fmt.Fprintf(out, "%3d. p=%.4f%s %s\n", rank+1, pipe.Result.Posterior[c], label, pipe.RepresentativeText[c])
	}
	return nil
}

func algNames() []string {
	names := make([]string, 0, 7)
	for _, a := range baselines.All(0) {
		names = append(names, a.Name())
	}
	return names
}

func pickAlg(name string, opts core.Options) factfind.FactFinder {
	for _, a := range baselines.AllOpts(opts) {
		if strings.EqualFold(a.Name(), name) {
			return a
		}
	}
	return nil
}
