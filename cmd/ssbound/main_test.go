package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"depsense/internal/model"
	"depsense/internal/randutil"
	"depsense/internal/synthetic"
)

func TestDemoBothMethods(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-demo", "-n", "10", "-method", "both", "-sweeps", "2000"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "exact") || !strings.Contains(out, "approx") {
		t.Fatalf("missing methods:\n%s", out)
	}
	if !strings.Contains(out, "Err=0.") {
		t.Fatalf("missing bound value:\n%s", out)
	}
}

func TestDataAndParamsFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := synthetic.DefaultConfig()
	cfg.Sources = 8
	cfg.Trees = synthetic.FixedInt(4)
	w, err := synthetic.Generate(cfg, randutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "data.json")
	df, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dataset.WriteTo(df); err != nil {
		t.Fatal(err)
	}
	df.Close()

	paramsPath := filepath.Join(dir, "params.json")
	raw, err := json.Marshal(w.TrueParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paramsPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := run(context.Background(), []string{"-data", dataPath, "-params", paramsPath, "-method", "exact"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "exact") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{}, &sb); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if err := run(context.Background(), []string{"-demo", "-method", "nope"}, &sb); err == nil {
		t.Fatal("unknown method accepted")
	}
	// Invalid params file.
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "d.json")
	paramsPath := filepath.Join(dir, "p.json")
	cfg := synthetic.DefaultConfig()
	cfg.Sources = 5
	cfg.Trees = synthetic.FixedInt(2)
	w, err := synthetic.Generate(cfg, randutil.New(2))
	if err != nil {
		t.Fatal(err)
	}
	df, _ := os.Create(dataPath)
	_, _ = w.Dataset.WriteTo(df)
	df.Close()
	bad := model.NewParams(5, 0.5)
	bad.Sources[0].A = 7
	raw, _ := json.Marshal(bad)
	_ = os.WriteFile(paramsPath, raw, 0o644)
	if err := run(context.Background(), []string{"-data", dataPath, "-params", paramsPath}, &sb); err == nil {
		t.Fatal("invalid params accepted")
	}
}
