// Command ssbound computes the fundamental error bound (Section III) for a
// claims dataset, with the parameter set θ supplied as JSON or derived from
// a fresh synthetic world.
//
// Usage:
//
//	ssbound -data data.json -params params.json [-method approx|exact]
//	ssbound -demo [-n 15] [-seed 1] [-method both]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"depsense/internal/bound"
	"depsense/internal/claims"
	"depsense/internal/model"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
	"depsense/internal/synthetic"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssbound:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssbound", flag.ContinueOnError)
	var (
		dataPath   = fs.String("data", "", "claims dataset JSON (from ssgen -kind synthetic)")
		paramsPath = fs.String("params", "", "parameter set JSON {\"sources\":[{\"a\":..},...],\"z\":..}")
		method     = fs.String("method", "approx", "exact, approx, or both")
		demo       = fs.Bool("demo", false, "generate a synthetic world and bound it with its true parameters")
		n          = fs.Int("n", 15, "demo: number of sources")
		seed       = fs.Int64("seed", 1, "random seed")
		sweeps     = fs.Int("sweeps", 20000, "approx: max Gibbs sweeps per column")
		maxCols    = fs.Int("maxcols", 0, "cap distinct dependency columns (0 = all)")
		chains     = fs.Int("chains", 1, "approx: independent Gibbs chains splitting the sweep budget (result depends on this, never on -workers)")
		workers    = fs.Int("workers", 1, "parallelism inside each column's bound (exact enumeration blocks / Gibbs chains); results are identical at any value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *claims.Dataset
	var params *model.Params
	switch {
	case *demo:
		cfg := synthetic.DefaultConfig()
		cfg.Sources = *n
		if cfg.Trees.Hi > *n {
			cfg.Trees = synthetic.FixedInt((*n + 1) / 2)
		}
		world, err := synthetic.Generate(cfg, randutil.New(*seed))
		if err != nil {
			return err
		}
		ds, params = world.Dataset, world.TrueParams
		fmt.Fprintln(out, "demo world:", ds.Summarize())
	case *dataPath != "" && *paramsPath != "":
		f, err := os.Open(*dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err = claims.ReadDataset(f)
		if err != nil {
			return err
		}
		raw, err := os.ReadFile(*paramsPath)
		if err != nil {
			return err
		}
		params = &model.Params{}
		if err := json.Unmarshal(raw, params); err != nil {
			return fmt.Errorf("decode params: %w", err)
		}
		if err := params.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need either -demo or both -data and -params")
	}

	compute := func(m bound.Method, name string) error {
		start := time.Now()
		res, err := bound.ForDatasetContext(ctx, ds, params, bound.DatasetOptions{
			Method:     m,
			MaxColumns: *maxCols,
			Approx:     bound.ApproxOptions{MaxSweeps: *sweeps, Chains: *chains},
			Workers:    *workers,
		}, randutil.New(*seed))
		if reason := runctx.Reason(err); reason != "" {
			fmt.Fprintf(out, "%-7s %s after %s — partial column results discarded\n",
				name, reason, time.Since(start).Round(time.Millisecond))
			return fmt.Errorf("%s: %w", name, err)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(out, "%-7s Err=%.6f (FP=%.6f FN=%.6f) in %s\n",
			name, res.Err, res.FalsePos, res.FalseNeg, time.Since(start).Round(time.Microsecond))
		return nil
	}
	switch *method {
	case "exact":
		return compute(bound.MethodExact, "exact")
	case "approx":
		return compute(bound.MethodApprox, "approx")
	case "both":
		if err := compute(bound.MethodExact, "exact"); err != nil {
			return err
		}
		return compute(bound.MethodApprox, "approx")
	default:
		return fmt.Errorf("unknown -method %q", *method)
	}
}
