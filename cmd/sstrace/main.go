// Command sstrace inspects run traces recorded by the serving stack — the
// TraceDir spill of ssserve, the -trace output of apollo and experiments,
// or a trace saved from GET /debug/runs/{id} — entirely offline.
//
// Usage:
//
//	sstrace [-rhat 1.1] [-lltol 0] [-events N] [-check] file.jsonl [file2.jsonl ...]
//
// For every trace it prints the header (id, workload, status, attrs),
// the pipeline stage timings, and each algorithm run's convergence
// diagnostics: log-likelihood trajectory and monotonicity, plateau onset,
// per-restart comparison, and the split-chain R-hat verdict for
// multi-chain Gibbs runs. -events additionally prints the tail of each
// run's iteration trajectory. Across all inputs it reports status and
// stop-reason breakdowns. With -check, it exits non-zero when any trace
// failed, any EM trajectory lost log-likelihood, or any multi-chain run
// exceeds the R-hat threshold — the CI guard form. -lltol forgives
// log-likelihood decreases up to the given size: the default M-step applies
// empirical-Bayes shrinkage, which is not the exact likelihood maximizer,
// so trajectories from production fits jitter by small amounts (observed up
// to ~1e-4) near the plateau; real EM regressions are orders larger.
// Strict ascent holds only with Smoothing < 0 (see core.Options).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"depsense/internal/mapsort"
	"depsense/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sstrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sstrace", flag.ContinueOnError)
	var (
		rhat   = fs.Float64("rhat", trace.RHatWarnThreshold, "R-hat threshold for the mixing verdict")
		lltol  = fs.Float64("lltol", 0, "treat log-likelihood decreases up to this size as smoothed-M-step jitter, not failures (0 = strict)")
		events = fs.Int("events", 0, "print the last N iteration events of every run (0 = diagnostics only)")
		check  = fs.Bool("check", false, "exit non-zero on failed traces, log-likelihood decreases, or unmixed chains")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: sstrace [-rhat 1.1] [-lltol 0] [-events N] [-check] file.jsonl ...")
	}

	var traces []*trace.Trace
	for _, path := range fs.Args() {
		ts, err := trace.ReadFile(path)
		if err != nil {
			return err
		}
		traces = append(traces, ts...)
	}

	var problems []string
	byStatus := map[string]int{}
	byStop := map[string]int{}
	for _, t := range traces {
		byStatus[t.Status]++
		if t.Failed() {
			problems = append(problems, fmt.Sprintf("trace %s: status %s", t.ID, t.Status))
		}
		printTrace(out, t, *rhat, *lltol, *events, func(stop string) { byStop[stop]++ }, &problems)
	}

	fmt.Fprintf(out, "=== %d trace(s)", len(traces))
	for _, k := range mapsort.Keys(byStatus) {
		fmt.Fprintf(out, " %s=%d", k, byStatus[k])
	}
	if len(byStop) > 0 {
		fmt.Fprint(out, " | stop reasons:")
		for _, k := range mapsort.Keys(byStop) {
			fmt.Fprintf(out, " %s=%d", k, byStop[k])
		}
	}
	fmt.Fprintln(out)
	if *check && len(problems) > 0 {
		return fmt.Errorf("%d problem(s):\n  %s", len(problems), strings.Join(problems, "\n  "))
	}
	return nil
}

// printTrace renders one trace: header, stages, and per-run diagnostics.
// countStop receives each run's stop reason for the cross-trace breakdown.
func printTrace(out io.Writer, t *trace.Trace, rhatThreshold, llTol float64, tailEvents int, countStop func(string), problems *[]string) {
	fmt.Fprintf(out, "trace %s (%s) status=%s events=%d duration=%s\n",
		t.ID, t.Name, t.Status, t.Events(), time.Duration(t.DurationNS).Round(time.Microsecond))
	if t.Error != "" {
		fmt.Fprintf(out, "  error: %s\n", t.Error)
	}
	if len(t.Attrs) > 0 {
		parts := make([]string, len(t.Attrs))
		for i, a := range t.Attrs {
			parts[i] = a.Key + "=" + a.Value
		}
		fmt.Fprintf(out, "  attrs: %s\n", strings.Join(parts, " "))
	}
	if len(t.Stages) > 0 {
		parts := make([]string, len(t.Stages))
		for i, s := range t.Stages {
			parts[i] = fmt.Sprintf("%s=%s", s.Name, time.Duration(s.DurationNS).Round(time.Microsecond))
		}
		fmt.Fprintf(out, "  stages: %s\n", strings.Join(parts, " "))
	}
	// Old spills may predate the diagnostics layer (or carry a truncated
	// record): re-diagnose offline.
	diags := t.Diagnostics
	if diags == nil || len(diags.Runs) != len(t.Runs) {
		diags = trace.Diagnose(t)
	}
	for i, run := range t.Runs {
		d := diags.Runs[i]
		if d.Stopped != "" {
			countStop(d.Stopped)
		}
		printRun(out, t.ID, run, d, rhatThreshold, llTol, tailEvents, problems)
	}
}

func printRun(out io.Writer, traceID string, run *trace.Run, d trace.RunDiag, rhatThreshold, llTol float64, tailEvents int, problems *[]string) {
	fmt.Fprintf(out, "  run %s: chains=%d iterations=%d", d.Algorithm, d.Chains, d.Iterations)
	if d.Stopped != "" {
		fmt.Fprintf(out, " stopped=%s", d.Stopped)
	}
	fmt.Fprintln(out)
	if d.HasLL {
		verdict := "monotone"
		switch {
		case d.Monotone:
		case d.MaxDecrease <= llTol:
			verdict = fmt.Sprintf("quasi-monotone: %d decrease(s) within jitter tolerance %g (max %g)",
				d.LLDecreases, llTol, d.MaxDecrease)
		default:
			verdict = fmt.Sprintf("NOT MONOTONE: %d decrease(s), max %g", d.LLDecreases, d.MaxDecrease)
			*problems = append(*problems,
				fmt.Sprintf("trace %s run %s: log-likelihood decreased %d time(s)", traceID, d.Algorithm, d.LLDecreases))
		}
		fmt.Fprintf(out, "    log-likelihood %g -> %g, %s\n", d.LLFirst, d.LLLast, verdict)
		if d.PlateauAt > 0 {
			fmt.Fprintf(out, "    plateau from iteration %d of %d\n", d.PlateauAt, d.Iterations)
		}
	}
	if d.HasRestarts {
		fmt.Fprintf(out, "    restarts: best chain %d (ll=%g), spread %g\n",
			d.RestartBestChain, d.RestartBestLL, d.RestartSpread)
	}
	if d.HasRHat {
		if d.RHat <= rhatThreshold {
			fmt.Fprintf(out, "    split R-hat %.4g <= %.4g: mixed\n", d.RHat, rhatThreshold)
		} else {
			fmt.Fprintf(out, "    split R-hat %.4g > %.4g: NOT MIXED\n", d.RHat, rhatThreshold)
			*problems = append(*problems,
				fmt.Sprintf("trace %s run %s: split R-hat %.4g exceeds %.4g", traceID, d.Algorithm, d.RHat, rhatThreshold))
		}
	} else if d.RHatStatus != "" {
		fmt.Fprintf(out, "    split R-hat unavailable: %s\n", d.RHatStatus)
	}
	if tailEvents > 0 {
		evs := run.Events
		if len(evs) > tailEvents {
			fmt.Fprintf(out, "    ... %d earlier event(s)\n", len(evs)-tailEvents)
			evs = evs[len(evs)-tailEvents:]
		}
		for _, e := range evs {
			fmt.Fprint(out, "    ", formatEvent(e), "\n")
		}
	}
}

// formatEvent renders one iteration event compactly, omitting fields the
// emitting layer did not report.
func formatEvent(e trace.Event) string {
	parts := []string{fmt.Sprintf("n=%d chain=%d", e.N, e.Chain)}
	if e.HasLL {
		parts = append(parts, fmt.Sprintf("ll=%g", e.LogLikelihood))
	}
	if e.HasValue {
		parts = append(parts, fmt.Sprintf("value=%g", e.Value))
	}
	if e.Samples > 0 {
		parts = append(parts, fmt.Sprintf("samples=%d", e.Samples))
	}
	if e.Done {
		parts = append(parts, "done("+e.Stopped+")")
	}
	return strings.Join(parts, " ")
}
