package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"depsense/internal/runctx"
	"depsense/internal/trace"
)

// testClock is a deterministic clock for builders (one ms per call).
func testClock() func() time.Time {
	base := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

// emTrace builds a healthy EM-style trace: monotone log-likelihood, two
// restarts, converged.
func emTrace(id string) *trace.Trace {
	b := trace.NewBuilder(id, "apollo", testClock())
	b.SetAttr("algorithm", "EM-Ext")
	b.Stage("fit", 5*time.Millisecond)
	hook := b.Hook()
	for chain, lls := range [][]float64{{-90, -60, -50}, {-95, -70, -65}} {
		for i, ll := range lls {
			hook(runctx.Iteration{
				Algorithm: "EM-Ext", N: i + 1, Chain: chain,
				LogLikelihood: ll, HasLL: true,
				Done: i == len(lls)-1, Stopped: runctx.StopConverged,
			})
		}
	}
	return b.Finish(trace.StatusOK, "")
}

// gibbsTrace builds a two-chain Gibbs-style trace whose chains sit at
// different levels — guaranteed to fail the R-hat verdict.
func gibbsTrace(id string) *trace.Trace {
	b := trace.NewBuilder(id, "factfind", testClock())
	hook := b.Hook()
	// Exactly-representable values keep the %g renderings short.
	for chain, level := range []float64{0.25, 0.5} {
		for i := 0; i < 8; i++ {
			v := level + 0.03125*float64(i%2)
			hook(runctx.Iteration{
				Algorithm: "gibbs-bound", N: i + 1, Chain: chain,
				Value: v, HasValue: true, Samples: (i + 1) * 100,
				Done: i == 7, Stopped: runctx.StopIterationCap,
			})
		}
	}
	return b.Finish(trace.StatusOK, "")
}

func writeTraces(t *testing.T, name string, traces ...*trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := trace.WriteFile(path, traces...); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderHealthyTrace(t *testing.T) {
	path := writeTraces(t, "em.jsonl", emTrace("run-1"))
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"trace run-1 (apollo) status=ok",
		"attrs: algorithm=EM-Ext",
		"stages: fit=5ms",
		"run EM-Ext: chains=2 iterations=3 stopped=converged",
		"log-likelihood -90 -> -50, monotone",
		"restarts: best chain 0 (ll=-50), spread 15",
		"=== 1 trace(s) ok=1 | stop reasons: converged=1",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRHatVerdictAndCheck(t *testing.T) {
	path := writeTraces(t, "gibbs.jsonl", gibbsTrace("run-2"))
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NOT MIXED") {
		t.Fatalf("unmixed chains not flagged:\n%s", out.String())
	}

	// -check turns the verdict into a non-zero exit.
	out.Reset()
	err := run([]string{"-check", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "split R-hat") {
		t.Fatalf("-check err = %v", err)
	}

	// A generous threshold flips the verdict and silences -check.
	out.Reset()
	if err := run([]string{"-check", "-rhat", "1e7", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mixed") {
		t.Fatalf("verdict not flipped at high threshold:\n%s", out.String())
	}
}

func TestFailedTraceAndStopBreakdown(t *testing.T) {
	b := trace.NewBuilder("run-3", "factfind", testClock())
	failed := b.Finish(trace.StatusDeadline, "compute budget exhausted")
	path := writeTraces(t, "mixed.jsonl", emTrace("run-1"), gibbsTrace("run-2"), failed)

	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"trace run-3 (factfind) status=deadline",
		"error: compute budget exhausted",
		"=== 3 trace(s) deadline=1 ok=2 | stop reasons: converged=1 iteration-cap=1",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if err := run([]string{"-check", "-rhat", "1e7", path}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "status deadline") {
		t.Fatalf("-check did not flag the failed trace: %v", err)
	}
}

func TestEventTail(t *testing.T) {
	path := writeTraces(t, "gibbs.jsonl", gibbsTrace("run-2"))
	var out strings.Builder
	if err := run([]string{"-events", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "... 14 earlier event(s)") {
		t.Fatalf("tail header missing:\n%s", got)
	}
	if !strings.Contains(got, "n=8 chain=1 value=0.53125 samples=800 done(iteration-cap)") {
		t.Fatalf("event row missing:\n%s", got)
	}
}

func TestNonMonotoneLLFlagged(t *testing.T) {
	b := trace.NewBuilder("run-4", "apollo", testClock())
	hook := b.Hook()
	for i, ll := range []float64{-90, -60, -75, -55} {
		hook(runctx.Iteration{Algorithm: "EM-Ext", N: i + 1, LogLikelihood: ll, HasLL: true})
	}
	path := writeTraces(t, "dip.jsonl", b.Finish(trace.StatusOK, ""))
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NOT MONOTONE: 1 decrease(s), max 15") {
		t.Fatalf("decrease not reported:\n%s", out.String())
	}
	if err := run([]string{"-check", path}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "log-likelihood decreased") {
		t.Fatalf("-check did not flag the decrease: %v", err)
	}
	// An -lltol below the dip still fails.
	if err := run([]string{"-check", "-lltol", "1", path}, &strings.Builder{}); err == nil {
		t.Fatal("-lltol 1 forgave a 15-unit decrease")
	}
}

// TestLLTolForgivesSmoothingJitter: production fits use the smoothed M-step,
// whose trajectory can lose a hair of raw log-likelihood near the plateau;
// -lltol marks such runs quasi-monotone instead of failing the check.
func TestLLTolForgivesSmoothingJitter(t *testing.T) {
	b := trace.NewBuilder("run-5", "ingest", testClock())
	hook := b.Hook()
	for i, ll := range []float64{-90, -60.000001, -60.000002, -60.000001} {
		hook(runctx.Iteration{Algorithm: "EM-Social", N: i + 1, LogLikelihood: ll, HasLL: true})
	}
	path := writeTraces(t, "jitter.jsonl", b.Finish(trace.StatusOK, ""))

	// Strict mode flags it.
	if err := run([]string{"-check", path}, &strings.Builder{}); err == nil {
		t.Fatal("strict -check passed a decreasing trajectory")
	}
	var out strings.Builder
	if err := run([]string{"-check", "-lltol", "1e-4", path}, &out); err != nil {
		t.Fatalf("-lltol 1e-4 still failed: %v", err)
	}
	if !strings.Contains(out.String(), "quasi-monotone: 1 decrease(s) within jitter tolerance 0.0001") {
		t.Fatalf("jitter verdict missing:\n%s", out.String())
	}
}

func TestUsageAndBadFile(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("no-args run succeeded")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &strings.Builder{}); err == nil {
		t.Fatal("missing file run succeeded")
	}
}
