// Command ssserve runs the fact-finding pipeline as an HTTP service.
//
// Usage:
//
//	ssserve [-addr :8080] [-topk 100] [-maxbody 33554432] [-seed 1]
//	        [-metrics] [-pprof addr] [-trace-buffer 64] [-trace-dir dir]
//	        [-cache-size 256] [-cache-ttl 5m] [-max-inflight 0] [-queue-depth 64]
//
// Endpoints: GET /healthz, GET /v1/algorithms, POST /v1/factfind,
// GET /metrics unless -metrics=false, and the flight-recorder views
// GET /debug/runs and GET /debug/runs/{id} (see internal/httpapi for the
// request schema). -trace-buffer sizes the in-memory flight recorder;
// -trace-dir additionally appends every finished run trace to
// dir/traces.jsonl for offline analysis with sstrace. With -pprof,
// net/http/pprof handlers are served on a separate listener so profiling
// is never exposed on the public address. The server shuts down gracefully
// on SIGINT/SIGTERM.
//
// The serving layer (see DESIGN.md §15) replays repeated identical requests
// from a content-hash result cache (-cache-size / -cache-ttl), coalesces
// concurrent identical requests into one pipeline run, and — with
// -max-inflight set — bounds concurrent computation, queueing up to
// -queue-depth waiters and shedding the rest with 429 + Retry-After.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"depsense/internal/httpapi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssserve:", err)
		os.Exit(1)
	}
}

// writeTimeoutSlack is the headroom added on top of the compute budget for
// request decode, pipeline stages outside the estimator, and response
// encoding. The write timeout must strictly dominate the compute budget:
// if it did not, the server would cut the connection while the handler is
// still entitled to compute, turning a graceful 503-with-partial-progress
// into an empty reply.
const writeTimeoutSlack = 30 * time.Second

// writeTimeout derives the server's WriteTimeout from the per-request
// compute budget: zero budget (unlimited compute) means no write timeout,
// otherwise budget plus slack.
func writeTimeout(computeBudget time.Duration) time.Duration {
	if computeBudget <= 0 {
		return 0
	}
	return computeBudget + writeTimeoutSlack
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		topK       = fs.Int("topk", 100, "default ranked output size")
		maxBody    = fs.Int64("maxbody", 32<<20, "maximum request body bytes")
		seed       = fs.Int64("seed", 1, "estimator seed")
		computeTmo = fs.Duration("compute-timeout", 0, "per-request compute budget (0 = unlimited); exceeding it returns 503 with partial progress; also sets the server write timeout to budget+30s (0 = no write timeout)")
		workers    = fs.Int("workers", 1, "per-request estimator parallelism; results are identical at any value, 0 = GOMAXPROCS")
		metrics    = fs.Bool("metrics", true, "serve GET /metrics (Prometheus text exposition)")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
		traceBuf   = fs.Int("trace-buffer", 64, "completed run traces retained by the flight recorder (failed runs get a separate quarter-sized ring); served at GET /debug/runs")
		traceDir   = fs.String("trace-dir", "", "append every finished run trace to this directory's traces.jsonl (empty = no spill); read offline with sstrace")
		cacheSize  = fs.Int("cache-size", 256, "result cache capacity in responses (negative = caching disabled)")
		cacheTTL   = fs.Duration("cache-ttl", 5*time.Minute, "result cache entry lifetime (negative = entries never expire)")
		maxInFl    = fs.Int("max-inflight", 0, "maximum concurrently executing pipeline computations (0 = unlimited); cache hits and coalesced requests are not counted")
		queueDepth = fs.Int("queue-depth", 64, "computations allowed to wait for a compute slot when -max-inflight is saturated; beyond it requests are shed with 429")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *traceDir != "" {
		// Fail at startup, not on the first spilled trace: a typo'd spill
		// directory should be an immediate, visible error.
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("trace dir: %w", err)
		}
	}
	handler := httpapi.New(httpapi.Options{
		MaxBodyBytes:   *maxBody,
		DefaultTopK:    *topK,
		Seed:           *seed,
		ComputeTimeout: *computeTmo,
		Workers:        *workers,
		DisableMetrics: !*metrics,
		Logger:         logger,
		TraceBuffer:    *traceBuf,
		TraceDir:       *traceDir,
		CacheSize:      *cacheSize,
		CacheTTL:       *cacheTTL,
		MaxInFlight:    *maxInFl,
		QueueDepth:     *queueDepth,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      writeTimeout(*computeTmo),
		IdleTimeout:       time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintln(os.Stderr, "ssserve: listening on", *addr)
		errCh <- srv.ListenAndServe()
	}()

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			fmt.Fprintln(os.Stderr, "ssserve: pprof on", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// Profiling is auxiliary: losing it should not take the
				// service down, but the operator needs to know.
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if pprofSrv != nil {
			_ = pprofSrv.Shutdown(shutdownCtx)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errCh // wait for ListenAndServe to return
		return nil
	}
}

// pprofMux builds a dedicated mux for the profiling endpoints rather than
// importing net/http/pprof for its DefaultServeMux side effect, which
// would silently expose profiling on the main handler too.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
