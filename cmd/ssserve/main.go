// Command ssserve runs the fact-finding pipeline as an HTTP service.
//
// Usage:
//
//	ssserve [-addr :8080] [-topk 100] [-maxbody 33554432] [-seed 1]
//
// Endpoints: GET /healthz, GET /v1/algorithms, POST /v1/factfind (see
// internal/httpapi for the request schema). The server shuts down
// gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"depsense/internal/httpapi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		topK       = fs.Int("topk", 100, "default ranked output size")
		maxBody    = fs.Int64("maxbody", 32<<20, "maximum request body bytes")
		seed       = fs.Int64("seed", 1, "estimator seed")
		computeTmo = fs.Duration("compute-timeout", 0, "per-request compute budget (0 = unlimited); exceeding it returns 503 with partial progress")
		workers    = fs.Int("workers", 1, "per-request estimator parallelism; results are identical at any value, 0 = GOMAXPROCS")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	handler := httpapi.New(httpapi.Options{
		MaxBodyBytes:   *maxBody,
		DefaultTopK:    *topK,
		Seed:           *seed,
		ComputeTimeout: *computeTmo,
		Workers:        *workers,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute, // large archives take a while
		IdleTimeout:       time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintln(os.Stderr, "ssserve: listening on", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errCh // wait for ListenAndServe to return
		return nil
	}
}
