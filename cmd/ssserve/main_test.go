package main

import (
	"testing"
	"time"
)

func TestRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestListenErrorSurfaces(t *testing.T) {
	// An unbindable address must make run return promptly with an error
	// rather than hang.
	if err := run([]string{"-addr", "256.256.256.256:1"}); err == nil {
		t.Fatal("unbindable address accepted")
	}
}

// TestWriteTimeout: the write timeout must strictly dominate the compute
// budget so the server never cuts a connection the handler is still
// entitled to use, and an unlimited budget means an unlimited write.
func TestWriteTimeout(t *testing.T) {
	cases := []struct {
		budget, want time.Duration
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Second, time.Second + writeTimeoutSlack},
		{10 * time.Minute, 10*time.Minute + writeTimeoutSlack},
	}
	for _, c := range cases {
		if got := writeTimeout(c.budget); got != c.want {
			t.Errorf("writeTimeout(%v) = %v, want %v", c.budget, got, c.want)
		}
	}
}
