package main

import (
	"testing"
)

func TestRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestListenErrorSurfaces(t *testing.T) {
	// An unbindable address must make run return promptly with an error
	// rather than hang.
	if err := run([]string{"-addr", "256.256.256.256:1"}); err == nil {
		t.Fatal("unbindable address accepted")
	}
}
