package depsense_test

// Executable documentation for the public facade: each Example compiles and
// runs under `go test`, and its output is verified against the comment.

import (
	"fmt"

	"depsense"
	"depsense/internal/randutil"
)

// ExampleNewDatasetBuilder shows the core workflow: build a source-claim
// matrix by hand and run the dependency-aware estimator.
func ExampleNewDatasetBuilder() {
	// Three sources, two assertions. Source 2 repeats source 0's claim.
	b := depsense.NewDatasetBuilder(3, 2)
	b.AddClaim(0, 0, false)
	b.AddClaim(1, 1, false)
	b.AddClaim(2, 0, true) // dependent repeat of assertion 0
	ds, err := b.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	fmt.Println(ds.Summarize())
	// Output:
	// sources=3 assertions=2 claims=3 (original=2 dependent=1) silent-dependent=0
}

// ExampleBuildDataset derives dependency indicators from a timestamped
// claim log, reproducing the paper's Figure 1 semantics: a claim is
// dependent iff a followed source asserted the same thing earlier.
func ExampleBuildDataset() {
	g := depsense.NewGraph(2)
	_ = g.AddFollow(1, 0) // source 1 follows source 0
	ds, err := depsense.BuildDataset(g, []depsense.Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 0, Time: 2}, // repeat after the followee
	}, 1)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	fmt.Println("claim by follower dependent:", ds.Dependent(1, 0))
	fmt.Println("claim by followee dependent:", ds.Dependent(0, 0))
	// Output:
	// claim by follower dependent: true
	// claim by followee dependent: false
}

// ExampleNewEMExt runs the full estimator on a synthetic world and reports
// how it ranks assertions.
func ExampleNewEMExt() {
	cfg := depsense.DefaultSyntheticConfig()
	cfg.Sources = 10
	world, err := depsense.GenerateSynthetic(cfg, randutil.New(7))
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	res, err := depsense.NewEMExt(depsense.EMOptions{Seed: 1}).Run(world.Dataset)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("posteriors:", len(res.Posterior))
	fmt.Println("top-3 credible:", res.TopK(3))
	// Output:
	// posteriors: 50
	// top-3 credible: [43 17 25]
}

// ExampleErrorBound computes the fundamental error bound for a tiny model:
// one perfectly uninformative source leaves exactly the prior error.
func ExampleErrorBound() {
	b := depsense.NewDatasetBuilder(1, 1)
	b.AddClaim(0, 0, false)
	ds, _ := b.Build()

	p := depsense.NewParams(1, 0.3)
	p.Sources[0] = depsense.SourceParams{A: 0.5, B: 0.5, F: 0.5, G: 0.5}
	res, err := depsense.ErrorBound(ds, p, depsense.BoundOptions{Method: depsense.BoundExact}, randutil.New(1))
	if err != nil {
		fmt.Println("bound:", err)
		return
	}
	fmt.Printf("Err = %.2f\n", res.Err)
	// Output:
	// Err = 0.30
}
