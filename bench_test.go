// Package depsense's root benchmarks regenerate every table and figure of
// the paper at benchmark-friendly scale; cmd/experiments runs the same
// sweeps at the paper's full repetition counts. Each figure benchmark
// reports the metric the figure plots (error-bound values, accuracies)
// through b.ReportMetric, so `go test -bench=.` prints the series alongside
// the timings.
package depsense

import (
	"fmt"
	"testing"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/bound"
	"depsense/internal/core"
	"depsense/internal/eval"
	"depsense/internal/factfind"
	"depsense/internal/grader"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
	"depsense/internal/twittersim"
)

// BenchmarkTableIBound recomputes the walk-through example of Table I.
func BenchmarkTableIBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Result.Err, "bound")
		}
	}
}

// benchBoundConfig builds the generator configuration of the bound
// experiments at one sweep point.
func benchBoundPoint(b *testing.B, cfg synthetic.Config, method bound.Method) {
	b.Helper()
	var errBound stats.Series
	for i := 0; i < b.N; i++ {
		rng := randutil.New(int64(100 + i))
		w, err := synthetic.Generate(cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		res, err := bound.ForDataset(w.Dataset, w.TrueParams, bound.DatasetOptions{
			Method:     method,
			MaxColumns: 8,
			Approx:     bound.ApproxOptions{MaxSweeps: 2000},
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		errBound.Add(res.Err)
	}
	b.ReportMetric(errBound.Mean(), "bound")
}

// BenchmarkFig3BoundVsSources sweeps n (Fig. 3): exact vs approximate
// bound precision as the number of sources grows.
func BenchmarkFig3BoundVsSources(b *testing.B) {
	for n := 5; n <= 25; n += 5 {
		cfg := synthetic.DefaultConfig()
		cfg.Sources = n
		if cfg.Trees.Hi > n {
			cfg.Trees = synthetic.FixedInt((n + 1) / 2)
		}
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			benchBoundPoint(b, cfg, bound.MethodExact)
		})
		b.Run(fmt.Sprintf("approx/n=%d", n), func(b *testing.B) {
			benchBoundPoint(b, cfg, bound.MethodApprox)
		})
	}
}

// BenchmarkFig4BoundVsTrees sweeps τ (Fig. 4).
func BenchmarkFig4BoundVsTrees(b *testing.B) {
	for tau := 1; tau <= 11; tau += 2 {
		cfg := synthetic.DefaultConfig()
		cfg.Trees = synthetic.FixedInt(tau)
		b.Run(fmt.Sprintf("exact/tau=%d", tau), func(b *testing.B) {
			benchBoundPoint(b, cfg, bound.MethodExact)
		})
		b.Run(fmt.Sprintf("approx/tau=%d", tau), func(b *testing.B) {
			benchBoundPoint(b, cfg, bound.MethodApprox)
		})
	}
}

// BenchmarkFig5BoundVsOdds sweeps the dependent discrimination odds
// (Fig. 5) with the independent odds fixed at 2.
func BenchmarkFig5BoundVsOdds(b *testing.B) {
	for _, odds := range []float64{1.1, 1.4, 1.7, 2.0} {
		cfg := synthetic.DefaultConfig()
		cfg.PIndepT = synthetic.Fixed(2.0 / 3.0)
		cfg.PDepT = synthetic.Fixed(synthetic.OddsToProb(odds))
		b.Run(fmt.Sprintf("exact/odds=%.1f", odds), func(b *testing.B) {
			benchBoundPoint(b, cfg, bound.MethodExact)
		})
		b.Run(fmt.Sprintf("approx/odds=%.1f", odds), func(b *testing.B) {
			benchBoundPoint(b, cfg, bound.MethodApprox)
		})
	}
}

// BenchmarkFig6BoundTime is Fig. 6 itself: ns/op of the exact bound blows
// up with n while the Gibbs approximation stays flat. One fixed dependency
// column per size keeps the measurement pure.
func BenchmarkFig6BoundTime(b *testing.B) {
	for n := 5; n <= 25; n += 5 {
		cfg := synthetic.DefaultConfig()
		cfg.Sources = n
		if cfg.Trees.Hi > n {
			cfg.Trees = synthetic.FixedInt((n + 1) / 2)
		}
		w, err := synthetic.Generate(cfg, randutil.New(1))
		if err != nil {
			b.Fatal(err)
		}
		col, err := bound.NewColumn(w.TrueParams, w.Dataset.DependencyColumn(0))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bound.Exact(col); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("approx/n=%d", n), func(b *testing.B) {
			rng := randutil.New(2)
			for i := 0; i < b.N; i++ {
				if _, err := bound.Approx(col, bound.ApproxOptions{MaxSweeps: 2000}, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchEstimatorPoint runs the three estimators on fresh worlds and reports
// their mean accuracies (the series Figs. 7-10 plot).
func benchEstimatorPoint(b *testing.B, cfg synthetic.Config) {
	b.Helper()
	accs := map[string]*stats.Series{}
	for i := 0; i < b.N; i++ {
		rng := randutil.New(int64(9000 + i))
		w, err := synthetic.Generate(cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		for _, alg := range []factfind.FactFinder{
			&core.EMExt{Opts: core.Options{Seed: int64(i)}},
			&baselines.EM{Opts: core.Options{Seed: int64(i)}},
			&baselines.EMSocial{Opts: core.Options{Seed: int64(i)}},
		} {
			res, err := alg.Run(w.Dataset)
			if err != nil {
				b.Fatal(err)
			}
			cl, err := stats.Classify(res.Decisions(factfind.DefaultThreshold), w.Truth)
			if err != nil {
				b.Fatal(err)
			}
			if accs[alg.Name()] == nil {
				accs[alg.Name()] = &stats.Series{}
			}
			accs[alg.Name()].Add(cl.Accuracy)
		}
	}
	b.ReportMetric(accs["EM-Ext"].Mean(), "acc-EMExt")
	b.ReportMetric(accs["EM"].Mean(), "acc-EM")
	b.ReportMetric(accs["EM-Social"].Mean(), "acc-EMSocial")
}

// BenchmarkFig7EstimatorVsSources sweeps n from 20 to 50 (Fig. 7).
func BenchmarkFig7EstimatorVsSources(b *testing.B) {
	for n := 20; n <= 50; n += 10 {
		cfg := synthetic.EstimatorConfig()
		cfg.Sources = n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchEstimatorPoint(b, cfg) })
	}
}

// BenchmarkFig8EstimatorVsAssertions sweeps m at n=100 (Fig. 8).
func BenchmarkFig8EstimatorVsAssertions(b *testing.B) {
	for _, m := range []int{10, 40, 70, 100} {
		cfg := synthetic.EstimatorConfig()
		cfg.Sources = 100
		cfg.Assertions = m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) { benchEstimatorPoint(b, cfg) })
	}
}

// BenchmarkFig9EstimatorVsTrees sweeps τ (Fig. 9).
func BenchmarkFig9EstimatorVsTrees(b *testing.B) {
	for tau := 1; tau <= 11; tau += 2 {
		cfg := synthetic.EstimatorConfig()
		cfg.Trees = synthetic.FixedInt(tau)
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) { benchEstimatorPoint(b, cfg) })
	}
}

// BenchmarkFig10EstimatorVsOdds sweeps the dependent odds (Fig. 10).
func BenchmarkFig10EstimatorVsOdds(b *testing.B) {
	for _, odds := range []float64{1.1, 1.4, 1.7, 2.0} {
		cfg := synthetic.EstimatorConfig()
		cfg.PIndepT = synthetic.Fixed(2.0 / 3.0)
		cfg.PDepT = synthetic.Fixed(synthetic.OddsToProb(odds))
		b.Run(fmt.Sprintf("odds=%.1f", odds), func(b *testing.B) { benchEstimatorPoint(b, cfg) })
	}
}

// BenchmarkTableIIIGenerate measures full-scale simulated dataset
// generation for every Table III scenario and reports the realized counts.
func BenchmarkTableIIIGenerate(b *testing.B) {
	for _, sc := range twittersim.Presets() {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			var sum twittersim.Summary
			for i := 0; i < b.N; i++ {
				w, err := twittersim.Generate(sc, randutil.New(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				sum = w.Summarize()
			}
			b.ReportMetric(float64(sum.TotalClaims), "claims")
			b.ReportMetric(float64(sum.OriginalClaims), "originals")
		})
	}
}

// BenchmarkFig11Empirical runs the Apollo pipeline end to end (clustering,
// dependency derivation, fact-finding, grading) per scenario at 1/8 scale,
// reporting EM-Ext's graded top-100 accuracy.
func BenchmarkFig11Empirical(b *testing.B) {
	for _, preset := range twittersim.Presets() {
		sc := twittersim.Small(preset.Name, 8)
		b.Run(preset.Name, func(b *testing.B) {
			var acc stats.Series
			for i := 0; i < b.N; i++ {
				w, err := twittersim.Generate(sc, randutil.New(int64(50+i)))
				if err != nil {
					b.Fatal(err)
				}
				msgs := make([]apollo.Message, len(w.Tweets))
				for k, t := range w.Tweets {
					msgs[k] = apollo.Message{Source: t.Source, Time: int64(t.ID), Text: t.Text}
				}
				out, err := apollo.Run(apollo.Input{
					NumSources: sc.Sources,
					Messages:   msgs,
					Graph:      w.Graph,
				}, &core.EMExt{Opts: core.Options{Seed: int64(i)}}, apollo.Options{TopK: 100})
				if err != nil {
					b.Fatal(err)
				}
				labels, err := grader.Grade(out.MessageAssertion, w.Tweets, w.Kinds)
				if err != nil {
					b.Fatal(err)
				}
				score, err := grader.ScoreTopK(out.Ranked, labels)
				if err != nil {
					b.Fatal(err)
				}
				acc.Add(score.Accuracy())
			}
			b.ReportMetric(acc.Mean(), "top100-acc")
		})
	}
}
