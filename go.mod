module depsense

go 1.22
