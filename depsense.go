// Package depsense is dependency-aware truth discovery for social sensing:
// a Go implementation of "On Source Dependency Models for Reliable Social
// Sensing: Algorithms and Fundamental Error Bounds" (ICDCS 2016).
//
// The package is a facade over the implementation packages under internal/
// and is the import surface for library consumers. It covers the full
// workflow:
//
//  1. Build a source-claim matrix with dependency indicators — directly
//     with a DatasetBuilder, or from a timestamped claim log plus a follow
//     Graph (BuildDataset), or from raw text messages through the Apollo
//     pipeline (RunPipeline).
//  2. Run a fact-finder: EM-Ext (the paper's dependency-aware estimator),
//     or any of the baselines it is evaluated against.
//  3. Bound what any estimator could do on the same data: the fundamental
//     error bound of Section III, exact or Gibbs-approximated.
//
// A minimal session:
//
//	b := depsense.NewDatasetBuilder(nSources, mAssertions)
//	b.AddClaim(i, j, dependent)
//	ds, err := b.Build()
//	res, err := depsense.NewEMExt(depsense.EMOptions{Seed: 1}).Run(ds)
//	ranked := res.Ranking()
//
// Every fact-finder also implements RunContext(ctx, ds) for cancellable,
// observable runs: deadlines and cancellation stop a run within one
// iteration (Result.Stopped records why it stopped), and a per-iteration
// IterationHook attached via WithIterationHook reports live progress.
//
// The cmd/ tools and examples/ directories demonstrate every entry point;
// DESIGN.md and EXPERIMENTS.md document the paper reproduction.
package depsense

import (
	"context"
	"math/rand"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/bound"
	"depsense/internal/claims"
	"depsense/internal/cluster"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/factfind"
	"depsense/internal/model"
	"depsense/internal/runctx"
	"depsense/internal/stream"
	"depsense/internal/synthetic"
	"depsense/internal/twittersim"
)

// ---- Datasets -------------------------------------------------------------

type (
	// Dataset is an immutable source-claim matrix with dependency
	// indicators, the input to every fact-finder and bound computation.
	Dataset = claims.Dataset
	// DatasetBuilder accumulates claims and silent-dependent marks.
	DatasetBuilder = claims.Builder
	// ClaimRef identifies one claimant of an assertion.
	ClaimRef = claims.ClaimRef
	// DatasetSummary aggregates Table III-style statistics.
	DatasetSummary = claims.Summary
)

// NewDatasetBuilder creates a builder for n sources and m assertions.
func NewDatasetBuilder(n, m int) *DatasetBuilder { return claims.NewBuilder(n, m) }

// ---- Dependency graphs ----------------------------------------------------

type (
	// Graph is a follower graph: an edge i->k means source i follows (and
	// may repeat) source k.
	Graph = depgraph.Graph
	// Event is one timestamped claim.
	Event = depgraph.Event
)

// NewGraph creates an empty follower graph over n sources.
func NewGraph(n int) *Graph { return depgraph.NewGraph(n) }

// BuildDataset derives the source-claim matrix and the full dependency
// indicator matrix from a timestamped claim log and a follow graph,
// following the semantics of the paper's Figure 1: a claim is dependent iff
// an ancestor asserted the same thing strictly earlier.
func BuildDataset(g *Graph, events []Event, numAssertions int) (*Dataset, error) {
	return depgraph.BuildDataset(g, events, numAssertions)
}

// ---- Model parameters -----------------------------------------------------

type (
	// SourceParams is the per-source channel θ_i = {a, b, f, g}.
	SourceParams = model.SourceParams
	// Params is the full parameter set θ: per-source channels plus the
	// prior z = P(assertion true).
	Params = model.Params
)

// NewParams allocates a zeroed parameter set for n sources.
func NewParams(n int, z float64) *Params { return model.NewParams(n, z) }

// ---- Fact-finders ----------------------------------------------------------

type (
	// FactFinder scores the assertions of a dataset.
	FactFinder = factfind.FactFinder
	// Result carries per-assertion credibility, estimated parameters, and
	// ranking helpers.
	Result = factfind.Result
	// EMOptions tunes the EM estimators.
	EMOptions = core.Options
	// EMExt is the paper's dependency-aware estimator.
	EMExt = core.EMExt
)

// DefaultThreshold is the posterior decision threshold used throughout the
// paper's simulations.
const DefaultThreshold = factfind.DefaultThreshold

// NewEMExt constructs the dependency-aware estimator.
func NewEMExt(opts EMOptions) *EMExt { return &core.EMExt{Opts: opts} }

// Baselines returns the paper's comparison lineup (Fig. 11), EM-Ext first:
// EM-Social, EM, Voting, Sums, Average.Log, and TruthFinder.
func Baselines(seed int64) []FactFinder { return baselines.All(seed) }

// ---- Run lifecycle ----------------------------------------------------------

type (
	// Iteration is one progress observation of a running estimator: the
	// iteration (or sweep/block) number, the log-likelihood or sample
	// count where the algorithm tracks one, elapsed wall time, and — on
	// the final observation — the stop reason.
	Iteration = runctx.Iteration
	// IterationHook receives Iteration observations. Attach one to a
	// context with WithIterationHook and pass the context to any
	// fact-finder's RunContext (or to ErrorBoundContext /
	// RunPipelineContext).
	IterationHook = runctx.Hook
)

// Stop reasons reported in Result.Stopped and Iteration.Stopped.
const (
	// StopConverged: the algorithm met its convergence criterion.
	StopConverged = runctx.StopConverged
	// StopIterationCap: the iteration budget ran out first.
	StopIterationCap = runctx.StopIterationCap
	// StopCancelled: the run context was cancelled mid-run.
	StopCancelled = runctx.StopCancelled
	// StopDeadline: the run context's deadline expired mid-run.
	StopDeadline = runctx.StopDeadline
)

// WithIterationHook returns a context carrying h; estimators fire it once
// per iteration/sweep/checkpoint. Hooks compose: if ctx already carries one,
// both fire, earliest-attached first.
func WithIterationHook(ctx context.Context, h IterationHook) context.Context {
	return runctx.WithHook(ctx, h)
}

// StopReason maps an error returned by a RunContext-style call to
// StopCancelled, StopDeadline, or "" (not a context error).
func StopReason(err error) string { return runctx.Reason(err) }

// Posterior scores every assertion under known (or externally estimated)
// parameters — the E-step of Eq. (9) without any fitting. It returns the
// posteriors and the data log-likelihood.
func Posterior(ds *Dataset, p *Params) ([]float64, float64, error) {
	return core.Posterior(ds, p)
}

type (
	// Confidence quantifies the uncertainty of an estimated parameter set
	// via complete-data Fisher information (Cramér-Rao style Wald
	// intervals).
	Confidence = core.Confidence
	// Interval is one parameter's confidence interval.
	Interval = core.Interval
)

// ConfidenceIntervals computes parameter confidence intervals for an
// estimated θ and its posteriors at the given nominal level (e.g. 0.95).
func ConfidenceIntervals(ds *Dataset, p *Params, posterior []float64, level float64) (*Confidence, error) {
	return core.ConfidenceIntervals(ds, p, posterior, level)
}

// ---- Streaming --------------------------------------------------------------

type (
	// StreamEstimator ingests timestamped claims in batches and maintains
	// warm-started truth estimates.
	StreamEstimator = stream.Estimator
	// StreamOptions tunes the streaming estimator.
	StreamOptions = stream.Options
)

// NewStreamEstimator creates an empty streaming estimator.
func NewStreamEstimator(opts StreamOptions) *StreamEstimator { return stream.New(opts) }

// ---- Error bounds -----------------------------------------------------------

type (
	// BoundResult is a computed error bound with its false-positive /
	// false-negative decomposition.
	BoundResult = bound.Result
	// BoundOptions selects the computation method and its budget.
	BoundOptions = bound.DatasetOptions
	// GibbsOptions tunes the sampling approximation (Algorithm 1).
	GibbsOptions = bound.ApproxOptions
)

// Bound computation methods.
const (
	// BoundExact enumerates all 2^n claim patterns per dependency column.
	BoundExact = bound.MethodExact
	// BoundApprox runs the Gibbs-sampling approximation of Algorithm 1.
	BoundApprox = bound.MethodApprox
	// BoundConvolution runs the deterministic log-likelihood-ratio DP, an
	// O(n·bins) alternative that scales to hundreds of sources.
	BoundConvolution = bound.MethodConvolution
)

// ErrorBound computes the fundamental error bound of Section III for a
// dataset under known parameters: the Bayes risk of an optimal estimator,
// which lower-bounds any fact-finder's expected misclassification rate.
func ErrorBound(ds *Dataset, p *Params, opts BoundOptions, rng *rand.Rand) (BoundResult, error) {
	return bound.ForDataset(ds, p, opts, rng)
}

// ErrorBoundContext is ErrorBound under a cancellable run-context: exact
// enumeration checks the context every block of patterns and the Gibbs
// approximation checks it every sweep.
func ErrorBoundContext(ctx context.Context, ds *Dataset, p *Params, opts BoundOptions, rng *rand.Rand) (BoundResult, error) {
	return bound.ForDatasetContext(ctx, ds, p, opts, rng)
}

// ---- Pipeline ----------------------------------------------------------------

type (
	// Message is one raw input item (a tweet) for the Apollo pipeline.
	Message = apollo.Message
	// PipelineInput is a complete pipeline input: messages plus the follow
	// graph.
	PipelineInput = apollo.Input
	// PipelineOptions tunes clustering and the ranked output size.
	PipelineOptions = apollo.Options
	// PipelineOutput carries the derived dataset, the clustering, and the
	// fact-finder's ranking.
	PipelineOutput = apollo.Output
	// Clusterer groups near-duplicate messages into assertions.
	Clusterer = cluster.Clusterer
	// LeaderClusterer is the single-pass inverted-index clusterer.
	LeaderClusterer = cluster.Leader
	// MinHashClusterer is the LSH-accelerated clusterer for large streams.
	MinHashClusterer = cluster.MinHash
)

// RunPipeline executes the end-to-end fact-finding pipeline: cluster
// messages into assertions, derive the source-claim matrix and dependency
// indicators, run the fact-finder, and rank.
func RunPipeline(in PipelineInput, finder FactFinder, opts PipelineOptions) (*PipelineOutput, error) {
	return apollo.Run(in, finder, opts)
}

// RunPipelineContext is RunPipeline under a cancellable run-context; on
// cancellation mid-estimation the partial output is returned alongside the
// context's error.
func RunPipelineContext(ctx context.Context, in PipelineInput, finder FactFinder, opts PipelineOptions) (*PipelineOutput, error) {
	return apollo.RunContext(ctx, in, finder, opts)
}

// ---- Generators ---------------------------------------------------------------

type (
	// SyntheticConfig parameterizes the paper's Section V-A simulation
	// generator.
	SyntheticConfig = synthetic.Config
	// SyntheticWorld is a generated dataset with ground truth and the
	// generating parameters.
	SyntheticWorld = synthetic.World
	// TwitterScenario parameterizes the simulated Twitter substitute for
	// the paper's Table III datasets.
	TwitterScenario = twittersim.Scenario
	// TwitterWorld is one simulated tweet stream.
	TwitterWorld = twittersim.World
)

// DefaultSyntheticConfig returns the paper's default simulation setting.
func DefaultSyntheticConfig() SyntheticConfig { return synthetic.DefaultConfig() }

// GenerateSynthetic builds one synthetic world.
func GenerateSynthetic(cfg SyntheticConfig, rng *rand.Rand) (*SyntheticWorld, error) {
	return synthetic.Generate(cfg, rng)
}

// TwitterScenarios returns the five Table III-scale scenario presets.
func TwitterScenarios() []TwitterScenario { return twittersim.Presets() }

// GenerateTwitter simulates one tweet stream.
func GenerateTwitter(sc TwitterScenario, rng *rand.Rand) (*TwitterWorld, error) {
	return twittersim.Generate(sc, rng)
}
