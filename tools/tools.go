//go:build tools

// Package tools pins the versions of build-time tooling via the standard
// blank-import pattern: the imports below make `go mod tidy` record the
// tool modules (and their checksums) in go.mod / go.sum, so CI and
// developers run the exact same analyzer versions.
//
// The build tag keeps the file out of every real build — `go build ./...`
// and `go test ./...` never compile it.
//
// NOTE: this repository is developed in an offline sandbox that cannot
// reach proxy.golang.org, so go.mod intentionally carries no entries for
// these modules yet; the versions are instead pinned in
// .github/workflows/ci.yml (staticcheck 2024.1.1, govulncheck v1.1.3).
// The first networked environment to run `go mod tidy` will materialize
// the pins here. Until then the in-repo cmd/depsenselint suite is
// stdlib-only by design and needs no module downloads.
package tools

import (
	_ "golang.org/x/tools/go/analysis"     // analyzer framework (future migration target for internal/analysis/framework)
	_ "golang.org/x/vuln/cmd/govulncheck"  // vulnerability scanning, pinned v1.1.3 in CI
	_ "honnef.co/go/tools/cmd/staticcheck" // staticcheck, pinned 2024.1.1 in CI
)
