package depsense

// End-to-end tests of the public facade: every consumer-facing entry point
// exercised the way README documents it.

import (
	"math"
	"testing"

	"depsense/internal/randutil"
)

func TestFacadeManualDataset(t *testing.T) {
	b := NewDatasetBuilder(3, 4)
	b.AddClaim(0, 0, false)
	b.AddClaim(1, 0, true)
	b.AddClaim(2, 1, false)
	b.MarkSilentDependent(1, 1)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.M() != 4 || ds.NumDependentClaims() != 1 {
		t.Fatalf("summary: %+v", ds.Summarize())
	}

	res, err := NewEMExt(EMOptions{Seed: 1}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posterior) != 4 || len(res.Ranking()) != 4 {
		t.Fatal("result shape wrong")
	}
}

func TestFacadeEventLog(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddFollow(0, 1); err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(g, []Event{
		{Source: 1, Assertion: 0, Time: 1},
		{Source: 0, Assertion: 0, Time: 2},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Dependent(0, 0) {
		t.Fatal("repeat not dependent")
	}
}

func TestFacadeBaselineLineup(t *testing.T) {
	algs := Baselines(1)
	if len(algs) != 7 || algs[0].Name() != "EM-Ext" {
		t.Fatalf("lineup: %d algorithms, first %q", len(algs), algs[0].Name())
	}
}

func TestFacadeSyntheticAndBound(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Sources = 10
	rng := randutil.New(3)
	w, err := GenerateSynthetic(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ErrorBound(w.Dataset, w.TrueParams, BoundOptions{Method: BoundExact}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err <= 0 || res.Err >= 0.5 {
		t.Fatalf("bound = %v", res.Err)
	}
	post, ll, err := Posterior(w.Dataset, w.TrueParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(post) != w.Dataset.M() || math.IsNaN(ll) {
		t.Fatal("posterior scoring broken")
	}
}

func TestFacadePipeline(t *testing.T) {
	sc := TwitterScenarios()[1] // Kirkuk
	scaled := sc
	scaled.Sources /= 40
	scaled.Assertions /= 40
	scaled.Claims /= 40
	scaled.OriginalClaims /= 40
	w, err := GenerateTwitter(scaled, randutil.New(5))
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]Message, len(w.Tweets))
	for i, tw := range w.Tweets {
		msgs[i] = Message{Source: tw.Source, Time: int64(tw.ID), Text: tw.Text}
	}
	out, err := RunPipeline(PipelineInput{
		NumSources: scaled.Sources,
		Messages:   msgs,
		Graph:      w.Graph,
	}, NewEMExt(EMOptions{Seed: 1}), PipelineOptions{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ranked) != 10 {
		t.Fatalf("ranked %d", len(out.Ranked))
	}
}

func TestFacadeStreaming(t *testing.T) {
	est := NewStreamEstimator(StreamOptions{EM: EMOptions{Seed: 2}})
	if err := est.ObserveFollow(1, 0); err != nil {
		t.Fatal(err)
	}
	res, err := est.AddBatch([]Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 0, Time: 2},
		{Source: 2, Assertion: 1, Time: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posterior) != 2 {
		t.Fatalf("posterior length %d", len(res.Posterior))
	}
}
